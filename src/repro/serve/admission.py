"""Admission control: bounded queue, load shedding, tenant quotas.

The service's first robustness layer.  Three mechanisms, all cheap and
all decided *before* any compute is spent on a request:

* a **bounded request queue** — at most ``REPRO_SERVE_QUEUE`` requests
  may be in the system (queued + running); request N+1 is shed with
  HTTP 429 and a ``Retry-After`` derived from the *observed* service
  time, so clients back off proportionally to actual load instead of
  hammering a fixed interval;
* **token-bucket quotas per tenant** — a tenant sustains
  ``REPRO_SERVE_TENANT_RPS`` requests/second with bursts up to
  ``REPRO_SERVE_TENANT_BURST``; an exhausted bucket rejects with the
  exact wait until the next token, leaving other tenants untouched;
* a **service-time estimator** — an exponentially weighted moving
  average of completed request durations that turns "the queue is
  full" into an honest number of seconds to stay away.

Everything here is synchronous and lock-guarded (the asyncio handlers
call it from one event loop, the worker threads report completions
from many), with injectable clocks so tests are deterministic.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import AdmissionRejected

#: Fallback service-time guess before any request completed [s].
INITIAL_SERVICE_TIME_S = 5.0

#: EWMA smoothing factor (weight of the newest observation).
EWMA_ALPHA = 0.3


class ServiceTimeEstimator:
    """EWMA of observed request service times, feeding Retry-After."""

    def __init__(self, initial: float = INITIAL_SERVICE_TIME_S,
                 alpha: float = EWMA_ALPHA):
        self._lock = threading.Lock()
        self.alpha = alpha
        self._ewma = float(initial)
        self.samples = 0

    def observe(self, service_s: float) -> None:
        """Fold one completed request's duration into the estimate."""
        with self._lock:
            if self.samples == 0:
                self._ewma = float(service_s)
            else:
                self._ewma = (self.alpha * float(service_s)
                              + (1.0 - self.alpha) * self._ewma)
            self.samples += 1

    @property
    def estimate(self) -> float:
        """Current smoothed service time [s]."""
        return self._ewma

    def retry_after(self, depth: int, workers: int) -> int:
        """Honest back-off hint for a shed request [whole seconds].

        ``depth`` requests are ahead of the client across ``workers``
        lanes; one service time per queue *round* must drain before a
        slot opens.  Clamped to at least 1 s (the header is an
        integer) and at most an hour (a hint, not a ban).
        """
        rounds = max(depth, 1) / max(workers, 1)
        return int(min(max(math.ceil(rounds * self._ewma), 1), 3600))


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``clock`` is injectable (monotonic seconds) so tests can step time
    deterministically.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; False when exhausted."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def wait_time(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (0 = now)."""
        with self._lock:
            self._refill()
            missing = tokens - self._tokens
            return max(missing, 0.0) / self.rate

    @property
    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionTicket:
    """Proof that one request holds one slot of the bounded queue."""

    __slots__ = ("controller", "admitted_at", "released")

    def __init__(self, controller: "AdmissionController",
                 admitted_at: float):
        self.controller = controller
        self.admitted_at = admitted_at
        self.released = False


class AdmissionController:
    """The bounded request queue with load-shedding.

    ``limit`` caps requests in the system.  :meth:`admit` returns an
    :class:`AdmissionTicket` or raises
    :class:`~repro.errors.AdmissionRejected` carrying the computed
    ``Retry-After``.  Completion flows back through :meth:`release`,
    which also feeds the service-time estimator.
    """

    def __init__(self, limit: int, workers: int,
                 estimator: Optional[ServiceTimeEstimator] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.limit = int(limit)
        self.workers = int(workers)
        self.estimator = estimator or ServiceTimeEstimator()
        self._clock = clock
        self._lock = threading.Lock()
        self.inflight = 0
        self.admitted_total = 0
        self.shed_total = 0
        #: Consecutive sheds since the last successful admission
        #: (feeds the health ladder's overload detection).
        self.consecutive_sheds = 0

    @property
    def depth(self) -> int:
        """Requests currently holding a queue slot."""
        return self.inflight

    def admit(self) -> AdmissionTicket:
        """Take a queue slot or shed with an honest Retry-After."""
        with self._lock:
            if self.inflight >= self.limit:
                self.shed_total += 1
                self.consecutive_sheds += 1
                retry_after = self.estimator.retry_after(
                    self.inflight, self.workers)
                raise AdmissionRejected(
                    f"request queue full ({self.inflight}/{self.limit} "
                    f"in flight); retry in ~{retry_after}s",
                    retry_after=retry_after)
            self.inflight += 1
            self.admitted_total += 1
            self.consecutive_sheds = 0
            return AdmissionTicket(self, self._clock())

    def release(self, ticket: AdmissionTicket) -> float:
        """Return a slot; returns the request's service time [s]."""
        if ticket.released:
            return 0.0
        ticket.released = True
        service_s = max(self._clock() - ticket.admitted_at, 0.0)
        with self._lock:
            self.inflight = max(self.inflight - 1, 0)
        self.estimator.observe(service_s)
        return service_s

    def snapshot(self) -> Dict[str, float]:
        """Queue counters for /metrics and the health ladder."""
        with self._lock:
            return {
                "limit": self.limit,
                "inflight": self.inflight,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "consecutive_sheds": self.consecutive_sheds,
                "service_time_ewma_s": self.estimator.estimate,
            }
