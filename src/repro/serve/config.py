"""Service configuration: every ``REPRO_SERVE_*`` knob in one place.

All values resolve through :mod:`repro.config`, so a zero, negative,
NaN or non-numeric setting fails loudly at startup — never inside the
admission path of a live request.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.config import resolve_float, resolve_int
from repro.engine.cache import resolve_cache_dir
from repro.engine.durability import resolve_shutdown_grace
from repro.errors import ConfigError

#: Bound on requests in the system (queued + running) before shedding.
QUEUE_ENV = "REPRO_SERVE_QUEUE"
DEFAULT_QUEUE = 16

#: Worker threads executing characterisation runs.
WORKERS_ENV = "REPRO_SERVE_WORKERS"
DEFAULT_WORKERS = 2

#: Per-tenant sustained request rate (token-bucket refill) [req/s].
TENANT_RPS_ENV = "REPRO_SERVE_TENANT_RPS"
DEFAULT_TENANT_RPS = 5.0

#: Per-tenant burst capacity (token-bucket size) [requests].
TENANT_BURST_ENV = "REPRO_SERVE_TENANT_BURST"
DEFAULT_TENANT_BURST = 10.0

#: Default per-request deadline when the client sends none [s].
#: 0 disables the implicit deadline (requests may run unbounded).
DEADLINE_ENV = "REPRO_SERVE_DEADLINE"
DEFAULT_DEADLINE = 0.0

#: Ceiling on any client-requested deadline [s].
MAX_DEADLINE_ENV = "REPRO_SERVE_MAX_DEADLINE"
DEFAULT_MAX_DEADLINE = 3600.0

#: Consecutive shed decisions that tip the health ladder to degraded.
SHED_DEGRADE_THRESHOLD = 8


@dataclass
class ServeConfig:
    """Resolved service settings (validated, ready to run)."""

    host: str = "127.0.0.1"
    port: int = 8349
    cache_dir: Optional[str] = None
    queue_limit: int = DEFAULT_QUEUE
    workers: int = DEFAULT_WORKERS
    tenant_rps: float = DEFAULT_TENANT_RPS
    tenant_burst: float = DEFAULT_TENANT_BURST
    default_deadline: float = DEFAULT_DEADLINE
    max_deadline: float = DEFAULT_MAX_DEADLINE
    grace: float = field(default_factory=resolve_shutdown_grace)
    backend: Optional[str] = None

    @classmethod
    def from_env(cls,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 queue_limit: Optional[int] = None,
                 workers: Optional[int] = None,
                 tenant_rps: Optional[float] = None,
                 tenant_burst: Optional[float] = None,
                 default_deadline: Optional[float] = None,
                 max_deadline: Optional[float] = None,
                 grace: Optional[float] = None,
                 backend: Optional[str] = None) -> "ServeConfig":
        """Resolve explicit > environment > default for every knob."""
        resolved_cache = resolve_cache_dir(cache_dir)
        if resolved_cache is None:
            raise ConfigError(
                "the characterisation service needs a disk cache for "
                "durable runs: set REPRO_CACHE_DIR or pass --cache-dir")
        config = cls(
            host=host if host is not None else "127.0.0.1",
            port=port if port is not None else 8349,
            cache_dir=str(resolved_cache),
            queue_limit=resolve_int(QUEUE_ENV, DEFAULT_QUEUE,
                                    queue_limit, positive=True),
            workers=resolve_int(WORKERS_ENV, DEFAULT_WORKERS,
                                workers, positive=True),
            tenant_rps=resolve_float(TENANT_RPS_ENV, DEFAULT_TENANT_RPS,
                                     tenant_rps, positive=True),
            tenant_burst=resolve_float(TENANT_BURST_ENV,
                                       DEFAULT_TENANT_BURST,
                                       tenant_burst, positive=True),
            default_deadline=resolve_float(DEADLINE_ENV, DEFAULT_DEADLINE,
                                           default_deadline, minimum=0.0),
            max_deadline=resolve_float(MAX_DEADLINE_ENV,
                                       DEFAULT_MAX_DEADLINE,
                                       max_deadline, positive=True),
            grace=resolve_shutdown_grace(grace),
            backend=backend or os.environ.get("REPRO_BACKEND") or "serial",
        )
        return config

    def tenants_root(self) -> str:
        """Root of the per-tenant cache namespaces."""
        return os.path.join(str(self.cache_dir), "tenants")
