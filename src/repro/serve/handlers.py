"""Request handling: JSON body -> durable flow run -> JSON response.

:func:`parse_characterize` turns an HTTP body into a validated
:class:`CharacterizeRequest` whose parameters are normalised exactly
like :func:`repro.flows.run_durable_flow` normalises its own — so the
derived run id (and hence the journal a retry resumes) depends only on
the *meaning* of the request, not on which defaults the client spelled
out.

:class:`FlowRunner` executes one admitted request on a worker thread:
a per-tenant engine (isolated cache namespace), the request's
cancellation token threaded into the scheduler, and the durable-run
journal keyed by the deterministic run id.  A deadline or drain that
interrupts the run surfaces as a *resumable* service error; a disk
cache that degraded to memory-only mid-run still answers, with the
response marked ``degraded: true``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cells.library import CELL_NAMES
from repro.cells.variants import DeviceVariant
from repro.config import require_finite_float
from repro.engine import Engine
from repro.engine.durability import CancellationToken
from repro.errors import (
    ConfigError,
    DeadlineExceeded,
    InvalidRequest,
    ReproError,
    RunInterrupted,
    ServiceDraining,
)
from repro.flows.durable import (
    DurableFlowRun,
    derive_run_id,
    flow_record,
    run_durable_flow,
)
from repro.geometry.transistor_layout import ChannelCount
from repro.ppa.runner import DEFAULT_DT
from repro.serve.tenants import Tenant

#: Request body keys :func:`parse_characterize` accepts.
ALLOWED_KEYS = frozenset(
    {"cells", "variants", "extraction_variants", "dt"})

_VARIANT_BY_VALUE = {v.value: v for v in DeviceVariant}
_CHANNEL_BY_NAME = {c.name: c for c in ChannelCount}


@dataclass
class CharacterizeRequest:
    """One validated characterisation request.

    ``flow`` is the journal-ready flow record and ``run_id`` its
    deterministic fingerprint — two clients posting the same body get
    the same run id, which is what lets the coalescing layer and the
    cross-process single-flight collapse them onto one computation.
    """

    cells: List[str]
    variants: List[DeviceVariant]
    channels: List[ChannelCount]
    dt: float
    flow: Dict[str, Any] = field(default_factory=dict)
    run_id: str = ""

    @property
    def request_key(self) -> str:
        """Coalescing key (identical requests share one computation)."""
        return self.run_id


def _parse_names(payload: Dict[str, Any], key: str,
                 known: Dict[str, Any], what: str) -> Optional[list]:
    raw = payload.get(key)
    if raw is None:
        return None
    if not isinstance(raw, list) or not raw:
        raise InvalidRequest(
            f"{key!r} must be a non-empty JSON array of {what} names")
    resolved = []
    for item in raw:
        if not isinstance(item, str) or item not in known:
            raise InvalidRequest(
                f"unknown {what} {item!r} in {key!r}; known: "
                f"{', '.join(sorted(known))}")
        resolved.append(known[item])
    return resolved


def parse_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body as a JSON object."""
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise InvalidRequest(f"request body is not valid JSON: {exc}") \
            from exc
    if not isinstance(payload, dict):
        raise InvalidRequest("request body must be a JSON object")
    return payload


def parse_characterize(payload: Dict[str, Any]) -> CharacterizeRequest:
    """Validate a ``POST /characterize`` body into a request object."""
    unknown = set(payload) - ALLOWED_KEYS
    if unknown:
        raise InvalidRequest(
            f"unknown request fields: {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(ALLOWED_KEYS))}")

    cells = _parse_names(payload, "cells",
                         {name: name for name in CELL_NAMES}, "cell")
    variants = _parse_names(payload, "variants", _VARIANT_BY_VALUE,
                            "variant")
    channels = _parse_names(payload, "extraction_variants",
                            _CHANNEL_BY_NAME, "channel variant")

    dt = payload.get("dt")
    if dt is not None:
        if isinstance(dt, bool) or not isinstance(dt, (int, float, str)):
            raise InvalidRequest("'dt' must be a positive number")
        try:
            dt = require_finite_float("dt", dt, positive=True)
        except ConfigError as exc:
            raise InvalidRequest(str(exc)) from exc
    else:
        dt = DEFAULT_DT

    # Normalise defaults exactly like run_durable_flow does, so the
    # derived run id is invariant to spelling the defaults out.
    cells = cells if cells else list(CELL_NAMES)
    variants = variants if variants else list(DeviceVariant)
    channels = channels if channels else list(ChannelCount)

    flow = flow_record(cells, variants, channels, None, None, dt)
    return CharacterizeRequest(
        cells=cells, variants=variants, channels=channels, dt=dt,
        flow=flow, run_id=derive_run_id(flow))


def _headline_or_none(result) -> Optional[Dict[str, float]]:
    """The paper-headline block, when the request covers its variants."""
    try:
        return result.headline()
    except Exception:
        return None


class FlowRunner:
    """Executes admitted requests as durable runs (one per call).

    ``backend`` is the engine backend name for per-request engines
    (``serial`` by default — concurrency comes from the service's
    worker threads, not from nested pools).
    """

    def __init__(self, backend: Optional[str] = None):
        self.backend = backend or "serial"

    def __call__(self, request: CharacterizeRequest, tenant: Tenant,
                 cancellation: CancellationToken,
                 observe=None) -> Dict[str, Any]:
        engine = Engine(backend=self.backend,
                        cache_dir=tenant.cache_dir)
        try:
            run = run_durable_flow(
                cells=request.cells,
                variants=request.variants,
                extraction_variants=request.channels,
                dt=request.dt,
                engine=engine,
                run_id=request.run_id,
                cancellation=cancellation,
                observe=observe)
        except RunInterrupted as exc:
            raise self._interruption_error(exc, request, cancellation) \
                from exc
        return self._response(run, tenant, engine)

    @staticmethod
    def _interruption_error(exc: RunInterrupted,
                            request: CharacterizeRequest,
                            cancellation: CancellationToken) -> ReproError:
        run_id = exc.run_id or request.run_id
        if cancellation.expired:
            return DeadlineExceeded(
                f"deadline expired before run {run_id} completed; "
                f"retry the same request to resume it", run_id=run_id)
        return ServiceDraining(
            f"service is draining; run {run_id} was journalled and "
            f"resumes on retry")

    @staticmethod
    def _response(run: DurableFlowRun, tenant: Tenant,
                  engine: Engine) -> Dict[str, Any]:
        # Local disk degradation is sticky for the process (a broken
        # disk stays broken); remote-tier degradation is transient —
        # the breaker re-attaches when the endpoint recovers — so the
        # two travel as separate keys and the app flags them apart.
        cache_degraded = engine.cache.write_errors > 0
        remote_degraded = engine.cache.remote_degraded
        result = run.result
        body: Dict[str, Any] = {
            "status": "completed",
            "run_id": run.run_id,
            "tenant": tenant.name,
            "resumed": run.resumed,
            "degraded": cache_degraded or remote_degraded,
            "cache_degraded": cache_degraded,
            "remote_degraded": remote_degraded,
            "manifest": result.manifest.summary()
            if result.manifest is not None else None,
        }
        if engine.cache.remote is not None:
            body["remote_cache"] = engine.cache.remote.stats()
        headline = _headline_or_none(result)
        if headline is not None:
            body["headline"] = headline
        return body
