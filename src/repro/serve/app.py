"""The characterisation service: asyncio HTTP front, threaded runs.

``python -m repro.serve`` binds a small stdlib-only HTTP/JSON server
around the durable flow runner:

* **admission first** — tenant quota, then the bounded request queue,
  both decided before a byte of compute; shed requests answer 429 with
  a measured ``Retry-After`` while ``/healthz`` stays responsive;
* **deadline propagation** — the ``X-Repro-Deadline`` header arms a
  per-request :class:`~repro.engine.durability.CancellationToken`; an
  expired deadline returns 504 *with the resumable run id*, and a
  plain retry of the same request resumes the same journal;
* **coalescing** — identical concurrent requests (same tenant, same
  normalised body) share one in-process computation, and the engine's
  cross-process single-flight covers identical requests hitting
  *different* replicas of the service;
* **graceful degradation** — the health ladder walks ``ok ->
  degraded -> draining``: sustained shedding or a disk cache that fell
  back to memory-only marks responses ``degraded: true``; SIGTERM
  stops admissions, drains in-flight runs within
  ``REPRO_SHUTDOWN_GRACE`` seconds, then cancels the stragglers — each
  answers 503 with its journalled, resumable run id, so no admitted
  request is ever silently dropped.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.engine.durability import load_run
from repro.errors import (
    InvalidRequest,
    ReproError,
    ServeError,
    ServiceDraining,
    error_payload,
)
from repro.observe import REQUEST_BUCKETS, MetricsRegistry
from repro.serve.admission import AdmissionController
from repro.serve.config import SHED_DEGRADE_THRESHOLD, ServeConfig
from repro.serve.deadlines import (
    DEADLINE_HEADER,
    deadline_token,
    parse_deadline,
)
from repro.serve.handlers import (
    FlowRunner,
    parse_body,
    parse_characterize,
)
from repro.serve.tenants import TenantRegistry

#: Request header naming the tenant (defaults to ``public``).
TENANT_HEADER = "x-repro-tenant"

#: Health ladder states, in degradation order.
HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_DRAINING = "draining"

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeApp:
    """All service state behind one event loop.

    ``runner`` is injectable so tests can swap the real durable flow
    for a stub (the admission, deadline, coalescing and drain logic is
    exercised without TCAD in the loop).
    """

    def __init__(self, config: ServeConfig,
                 runner: Optional[FlowRunner] = None):
        self.config = config
        self.runner = runner or FlowRunner(backend=config.backend)
        self.metrics = MetricsRegistry()
        self.admission = AdmissionController(config.queue_limit,
                                             config.workers)
        self.tenants = TenantRegistry(config.tenants_root(),
                                      config.tenant_rps,
                                      config.tenant_burst)
        self.executor = ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-serve")
        self.draining = False
        self.cache_degraded = False
        #: Remote-tier degradation is *not* sticky: the breaker
        #: re-attaches when the endpoint recovers, and health follows.
        self.remote_degraded = False
        self.metrics.gauge("engine.cache.remote.degraded").set(0.0)
        #: (tenant, request_key) -> Future of the leader's response.
        self._inflight: Dict[Tuple[str, str], "asyncio.Future"] = {}
        #: Cancellation tokens of requests currently executing.
        self._active_tokens: set = set()
        self._open_requests = 0
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # health ladder
    # ------------------------------------------------------------------
    def health(self) -> str:
        """Current rung: ``ok``, ``degraded`` or ``draining``."""
        if self.draining:
            return HEALTH_DRAINING
        if (self.cache_degraded or self.remote_degraded
                or self.admission.consecutive_sheds
                >= SHED_DEGRADE_THRESHOLD):
            return HEALTH_DEGRADED
        return HEALTH_OK

    def begin_drain(self) -> None:
        """SIGTERM/SIGINT entry: stop admitting, start the grace clock."""
        if not self.draining:
            self.draining = True
            self.metrics.counter("serve.drain_started").inc()
        self._shutdown.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, headers, body = parsed
            try:
                status, payload, extra = await self._dispatch(
                    method, path, headers, body)
            except ServeError as exc:
                status, payload, extra = self._error_response(exc)
            except ReproError as exc:
                status, payload, extra = 500, {"error": exc.to_dict()}, {}
            except Exception as exc:  # zero silently-dropped requests
                status, payload, extra = (
                    500, {"error": error_payload(exc)}, {})
            await self._write_response(writer, status, payload, extra)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, _ = request_line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if length:
            body = await reader.readexactly(length)
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              payload: Dict[str, Any],
                              extra: Dict[str, str]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in extra.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    @staticmethod
    def _error_response(exc: ServeError):
        extra: Dict[str, str] = {}
        if exc.retry_after is not None:
            extra["Retry-After"] = str(int(exc.retry_after))
        return exc.http_status, {"error": exc.to_dict()}, extra

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes):
        if path == "/healthz":
            return 200, {"status": self.health()}, {}
        if path == "/readyz":
            health = self.health()
            status = 503 if health == HEALTH_DRAINING else 200
            return status, {"status": health}, {}
        if path == "/metrics":
            return 200, self._metrics_payload(), {}
        if path.startswith("/runs/"):
            return self._run_status(path[len("/runs/"):], headers)
        if path == "/characterize":
            if method != "POST":
                return 405, {"error": InvalidRequest(
                    "use POST /characterize").to_dict()}, {}
            return await self._characterize(headers, body)
        return 404, {"error": {
            "type": "NotFound", "code": "serve.not_found",
            "message": f"no route {path!r}", "retryable": False}}, {}

    def _metrics_payload(self) -> Dict[str, Any]:
        return {
            "health": self.health(),
            "admission": self.admission.snapshot(),
            "tenants": self.tenants.snapshot(),
            "metrics": self.metrics.snapshot(),
        }

    def _run_status(self, run_id: str, headers: Dict[str, str]):
        tenant = self.tenants.get(headers.get(TENANT_HEADER, ""))
        try:
            state = load_run(tenant.cache_dir, run_id)
        except ReproError as exc:
            return 404, {"error": exc.to_dict()}, {}
        return 200, {
            "run_id": run_id,
            "tenant": tenant.name,
            "status": state.status,
            "resumes": state.resumes,
            "journalled_tasks": len(state.tasks),
        }, {}

    # ------------------------------------------------------------------
    # the characterisation route
    # ------------------------------------------------------------------
    async def _characterize(self, headers: Dict[str, str], body: bytes):
        started = time.monotonic()
        self.metrics.counter("serve.requests_total").inc()
        self._open_requests += 1
        try:
            status, payload, extra = await self._characterize_inner(
                headers, body)
        except ServeError as exc:
            status, payload, extra = self._error_response(exc)
        except ReproError as exc:
            status, payload, extra = 500, {"error": exc.to_dict()}, {}
        except Exception as exc:  # zero silently-dropped requests
            status, payload, extra = 500, {"error": error_payload(exc)}, {}
        finally:
            self._open_requests -= 1
            self.metrics.histogram(
                "serve.request_seconds", REQUEST_BUCKETS).observe(
                    time.monotonic() - started)
        self.metrics.counter(
            f"serve.responses_{status // 100}xx").inc()
        return status, payload, extra

    async def _characterize_inner(self, headers: Dict[str, str],
                                  body: bytes):
        if self.draining:
            raise ServiceDraining(
                "service is draining (SIGTERM received); "
                "retry against another replica")

        request = parse_characterize(parse_body(body))
        tenant = self.tenants.charge(headers.get(TENANT_HEADER, ""))
        deadline_s = parse_deadline(headers.get(DEADLINE_HEADER),
                                    self.config.default_deadline,
                                    self.config.max_deadline)

        # Coalesce before admission: a follower of an identical
        # in-flight request consumes no queue slot and no compute.
        key = (tenant.name, request.request_key)
        leader_future = self._inflight.get(key)
        if leader_future is not None:
            self.metrics.counter("serve.coalesced_total").inc()
            response = dict(await asyncio.shield(leader_future))
            response["coalesced"] = True
            return 200, response, {}

        ticket = self.admission.admit()
        self.metrics.gauge("serve.inflight").add(1)
        token = deadline_token(deadline_s)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        self._active_tokens.add(token)
        try:
            response = await loop.run_in_executor(
                self.executor, self.runner, request, tenant, token)
            # Runners that predate the remote tier only emit the
            # combined "degraded" flag; treat it as the sticky local
            # kind when the split keys are absent.
            if response.get("cache_degraded",
                            response.get("degraded", False)):
                self.cache_degraded = True
            self.remote_degraded = bool(
                response.get("remote_degraded", False))
            self.metrics.gauge("engine.cache.remote.degraded").set(
                1.0 if self.remote_degraded else 0.0)
            response["degraded"] = (response.get("degraded", False)
                                    or self.health() == HEALTH_DEGRADED)
            if not future.done():
                future.set_result(response)
            return 200, response, {}
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Followers re-raise through their own await; stop the
                # "exception was never retrieved" warning here.
                future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
            self._active_tokens.discard(token)
            self.admission.release(ticket)
            self.metrics.gauge("serve.inflight").add(-1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Bind, announce, serve until SIGTERM/SIGINT, then drain."""
        server = await asyncio.start_server(
            self.handle_connection, self.config.host, self.config.port)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):
                pass
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro.serve listening on http://{host}:{port}",
              flush=True)
        try:
            async with server:
                await self._shutdown.wait()
                await self._drain()
        finally:
            self.executor.shutdown(wait=True)

    async def _drain(self) -> None:
        """Let in-flight runs finish within grace, then cancel them."""
        grace = self.config.grace
        deadline = time.monotonic() + grace
        while self._open_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._open_requests:
            # Grace is up: interrupt the stragglers at their next task
            # boundary; each answers 503 with its resumable run id.
            for token in list(self._active_tokens):
                token.request(reason="drain")
            hard_stop = time.monotonic() + max(grace, 1.0) + 10.0
            while self._open_requests and time.monotonic() < hard_stop:
                await asyncio.sleep(0.05)
        self.metrics.counter("serve.drain_completed").inc()


def run_app(config: ServeConfig,
            runner: Optional[FlowRunner] = None) -> int:
    """Blocking entry point: serve until drained; 0 on clean exit."""
    app = ServeApp(config, runner=runner)
    asyncio.run(app.serve())
    return 0
