"""Deadline propagation: request header -> engine cancellation token.

The client states its patience in the ``X-Repro-Deadline`` header
(seconds of wall time it will wait).  The service clamps it to
``REPRO_SERVE_MAX_DEADLINE``, arms a
:class:`~repro.engine.durability.CancellationToken` with the absolute
expiry, and threads the token through the durable flow into the
scheduler — which checks it at every task boundary, winds the run down
with zero grace once expired, and journals an ``interrupted`` end
record.  The 504 response carries the resumable ``run_id``: because
run ids are derived from the request itself, a plain retry of the same
request resumes the same journal and pays only for what the deadline
cut short.
"""

from __future__ import annotations

from typing import Optional

from repro.config import require_finite_float
from repro.engine.durability import CancellationToken
from repro.errors import ConfigError, InvalidRequest

#: Request header carrying the client's deadline [seconds of patience].
DEADLINE_HEADER = "x-repro-deadline"


def parse_deadline(header_value: Optional[str],
                   default_deadline: float,
                   max_deadline: float) -> Optional[float]:
    """Resolve a request's deadline in seconds (``None`` = unbounded).

    The header wins over the service default
    (``REPRO_SERVE_DEADLINE``); either is clamped to
    ``REPRO_SERVE_MAX_DEADLINE``.  A zero/absent value means "no
    deadline" only when the service default is also unlimited.
    """
    if header_value is not None and header_value.strip():
        try:
            seconds = require_finite_float(
                DEADLINE_HEADER, header_value.strip(), positive=True)
        except ConfigError as exc:
            raise InvalidRequest(
                f"invalid {DEADLINE_HEADER} header: {exc}") from exc
    elif default_deadline > 0:
        seconds = default_deadline
    else:
        return None
    return min(seconds, max_deadline)


def deadline_token(deadline_s: Optional[float]) -> CancellationToken:
    """A cancellation token armed with ``deadline_s`` (if bounded).

    The token is per-request and owned by the service — no signal
    handlers involved, so it works from worker threads.  Its
    ``grace`` collapses to zero once the deadline expires (the
    scheduler abandons in-flight work instead of waiting it out).
    """
    token = CancellationToken()
    if deadline_s is not None:
        token.set_deadline(deadline_s)
    return token
