"""Multi-tenancy: per-tenant quotas and isolated cache namespaces.

A tenant is a short client-chosen identity (the ``X-Repro-Tenant``
header; ``public`` when absent).  Each tenant gets

* its own token bucket (one tenant flooding the service exhausts its
  *own* quota, not the queue capacity other tenants rely on), and
* its own cache namespace — ``<cache_root>/tenants/<name>`` — so
  tenants cannot observe each other's artefacts (timing, presence) and
  a poisoned cache entry stays contained to the tenant that wrote it.

Names are restricted to ``[A-Za-z0-9_-]`` (max 64 chars) so a tenant
header can never traverse out of the namespaces root.
"""

from __future__ import annotations

import os
import re
import threading
import time
from typing import Callable, Dict

from repro.errors import InvalidRequest, QuotaExceeded
from repro.serve.admission import TokenBucket

#: Tenant used when the client sends no ``X-Repro-Tenant`` header.
DEFAULT_TENANT = "public"

_NAME_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def validate_tenant_name(name: str) -> str:
    """Normalise and validate a tenant identity from a request header."""
    name = (name or "").strip() or DEFAULT_TENANT
    if not _NAME_RE.match(name):
        raise InvalidRequest(
            "tenant names are 1-64 characters of [A-Za-z0-9_-] "
            f"(got {name!r})")
    return name


class Tenant:
    """One tenant's quota bucket and cache namespace."""

    __slots__ = ("name", "bucket", "cache_dir", "requests_total",
                 "rejected_total")

    def __init__(self, name: str, bucket: TokenBucket, cache_dir: str):
        self.name = name
        self.bucket = bucket
        self.cache_dir = cache_dir
        self.requests_total = 0
        self.rejected_total = 0


class TenantRegistry:
    """Lazily materialised tenants under one cache root.

    ``charge`` is the per-request entry point: it validates the name,
    creates the tenant on first sight (bucket starts full) and takes
    one token — raising :class:`~repro.errors.QuotaExceeded` with the
    exact wait until the next token when the bucket is dry.
    """

    def __init__(self, root: str, rps: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.root = root
        self.rps = float(rps)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}

    def get(self, name: str) -> Tenant:
        """The tenant for ``name``, created (with namespace) on demand."""
        name = validate_tenant_name(name)
        tenant = self._tenants.get(name)
        if tenant is None:
            with self._lock:
                tenant = self._tenants.get(name)
                if tenant is None:
                    cache_dir = os.path.join(self.root, name)
                    os.makedirs(cache_dir, exist_ok=True)
                    tenant = Tenant(
                        name,
                        TokenBucket(self.rps, self.burst,
                                    clock=self._clock),
                        cache_dir)
                    self._tenants[name] = tenant
        return tenant

    def charge(self, name: str) -> Tenant:
        """Validate ``name`` and spend one quota token for it."""
        tenant = self.get(name)
        tenant.requests_total += 1
        if not tenant.bucket.try_take(1.0):
            tenant.rejected_total += 1
            wait = tenant.bucket.wait_time(1.0)
            retry_after = max(int(wait + 0.999), 1)
            raise QuotaExceeded(
                f"tenant {tenant.name!r} exceeded its request quota "
                f"({self.rps:g} req/s, burst {self.burst:g}); next "
                f"token in ~{retry_after}s",
                retry_after=retry_after)
        return tenant

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters for /metrics."""
        with self._lock:
            tenants = dict(self._tenants)
        return {
            name: {
                "requests_total": tenant.requests_total,
                "rejected_total": tenant.rejected_total,
                "tokens_available": round(tenant.bucket.available, 3),
            }
            for name, tenant in sorted(tenants.items())
        }
