"""Run manifests: what the engine did, task by task.

Every :meth:`repro.engine.Engine.run` produces a :class:`RunManifest`
with one :class:`TaskRecord` per task — stage, fingerprint, whether it
hit the memory or disk cache or was computed, how long it took, and
which worker produced it.  The manifest answers the operational
questions a cached parallel pipeline raises: "did the warm run actually
skip the TCAD sweeps?", "what fraction of the wall time went to
extraction?", "did the pool spread work across workers?".
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Run statuses a manifest can carry.
STATUS_COMPLETED = "completed"
STATUS_INTERRUPTED = "interrupted"


@dataclass(frozen=True)
class TaskRecord:
    """Outcome of one task in one run.

    ``cache`` is ``"memory"``, ``"disk"`` or ``"miss"`` (computed);
    ``worker`` is ``"cache"`` for hits, ``"main"`` for in-process serial
    execution, ``"peer"`` for artefacts published by another work-queue
    invocation, or the pool worker's pid rendered as a string.
    ``attempts`` counts compute attempts (> 1 after retries).

    Time semantics: ``wall_time`` is the task's own elapsed compute
    time (on whatever worker ran it), ``cpu_time`` its process CPU
    time, and ``started_at`` the compute start as an offset from the
    run start (-1.0 when unknown, e.g. cache hits).  Per-task wall
    times of a parallel run overlap — summing them gives busy
    worker-seconds, *not* elapsed time (the pre-1.5 manifests summed
    them into a per-stage "wall_time" that could exceed the run's
    ``total_wall_time``; see :meth:`RunManifest.summary`).
    """

    task_id: str
    stage: str
    key: str
    cache: str
    wall_time: float
    worker: str
    attempts: int = 1
    cpu_time: float = 0.0
    started_at: float = -1.0

    @property
    def cache_hit(self) -> bool:
        return self.cache != "miss"


@dataclass(frozen=True)
class TaskFailure:
    """A task that produced no artefact in one run.

    ``status`` is ``"failed"`` (its compute raised after all retry
    attempts, or it timed out / lost its worker too often) or
    ``"skipped"`` (a dependency failed; ``upstream`` names it).
    ``traceback`` holds the tail of the formatted traceback — enough
    to triage without keeping whole stack dumps in every manifest.
    ``code`` is the stable machine-readable error code (see
    :func:`repro.errors.error_code`); clients use it to distinguish
    retryable failures (timeouts, crashes) from permanent ones.
    """

    task_id: str
    stage: str
    key: str
    status: str
    error_type: str = ""
    message: str = ""
    attempts: int = 0
    traceback: str = ""
    upstream: str = ""
    code: str = ""
    retryable: bool = False


@dataclass
class RunManifest:
    """All task records of one engine run plus run-level settings."""

    max_workers: int
    records: List[TaskRecord] = field(default_factory=list)
    failures: List[TaskFailure] = field(default_factory=list)
    total_wall_time: float = 0.0
    pool_rebuilds: int = 0
    #: Execution backend name ("" for pre-1.5 manifests).
    backend: str = ""
    #: Serialized payload bytes that crossed process boundaries.
    transfer_bytes: int = 0
    #: ``completed`` normally; ``interrupted`` when a SIGINT/SIGTERM
    #: stopped the run early (the journal + cache make it resumable).
    status: str = STATUS_COMPLETED
    #: Durable-run identifier ("" for non-journalled runs).
    run_id: str = ""

    @property
    def interrupted(self) -> bool:
        """True when the run was stopped before completing."""
        return self.status == STATUS_INTERRUPTED

    def add(self, record: TaskRecord) -> None:
        self.records.append(record)

    def add_failure(self, failure: TaskFailure) -> None:
        self.failures.append(failure)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stages(self) -> List[str]:
        """Stage names present, in first-appearance order."""
        seen: List[str] = []
        for record in self.records:
            if record.stage not in seen:
                seen.append(record.stage)
        return seen

    def for_stage(self, stage: str) -> List[TaskRecord]:
        """Records of one stage."""
        return [r for r in self.records if r.stage == stage]

    def hit_rate(self, stage: Optional[str] = None) -> float:
        """Fraction of tasks served from cache (1.0 = all hits)."""
        records = self.for_stage(stage) if stage else self.records
        if not records:
            return 0.0
        return sum(1 for r in records if r.cache_hit) / len(records)

    def workers_used(self) -> List[str]:
        """Distinct workers that computed at least one task."""
        return sorted({r.worker for r in self.records if r.cache == "miss"})

    def failed(self) -> List[TaskFailure]:
        """Tasks whose compute failed after all attempts."""
        return [f for f in self.failures if f.status == "failed"]

    def skipped(self) -> List[TaskFailure]:
        """Tasks skipped because a dependency failed."""
        return [f for f in self.failures if f.status == "skipped"]

    def retries(self) -> int:
        """Extra compute attempts spent across the whole run."""
        return (sum(r.attempts - 1 for r in self.records)
                + sum(max(f.attempts - 1, 0) for f in self.failures))

    def stage_wall_span(self, stage: str) -> float:
        """Elapsed wall-clock span of a stage's computed tasks.

        ``max(start + wall) - min(start)`` over records with a known
        ``started_at`` — overlapping parallel tasks are counted once,
        so the span can never exceed ``total_wall_time``.  Falls back
        to summed task time when no record carries a timestamp (old
        manifests, cache-only stages).
        """
        timed = [r for r in self.for_stage(stage) if r.started_at >= 0.0]
        if not timed:
            return sum(r.wall_time for r in self.for_stage(stage))
        return (max(r.started_at + r.wall_time for r in timed)
                - min(r.started_at for r in timed))

    #: What each summary time field means (the pre-1.5 per-stage
    #: "wall_time" summed overlapping worker time and could exceed
    #: ``total_wall_time`` — 21.6 s vs 20.5 s in BENCH_engine.json).
    TIME_SEMANTICS = {
        "wall_span": "elapsed wall-clock span of the stage "
                     "(overlapping tasks counted once)",
        "task_seconds": "summed per-task wall time "
                        "(busy worker-seconds, not elapsed time)",
        "cpu_seconds": "summed per-task process CPU time",
    }

    def summary(self) -> Dict:
        """Aggregate view: totals plus per-stage hit/compute breakdown."""
        per_stage = {}
        for stage in self.stages():
            records = self.for_stage(stage)
            per_stage[stage] = {
                "tasks": len(records),
                "hits": sum(1 for r in records if r.cache_hit),
                "computed": sum(1 for r in records if not r.cache_hit),
                "wall_span": self.stage_wall_span(stage),
                "task_seconds": sum(r.wall_time for r in records),
                "cpu_seconds": sum(r.cpu_time for r in records),
            }
        return {
            "tasks": len(self.records) + len(self.failures),
            "cache_hits": sum(1 for r in self.records if r.cache_hit),
            "computed": sum(1 for r in self.records if not r.cache_hit),
            "failed": len(self.failed()),
            "skipped": len(self.skipped()),
            "retries": self.retries(),
            "pool_rebuilds": self.pool_rebuilds,
            "max_workers": self.max_workers,
            "backend": self.backend,
            "transfer_bytes": self.transfer_bytes,
            "workers_used": self.workers_used(),
            "total_wall_time": self.total_wall_time,
            "status": self.status,
            "run_id": self.run_id,
            "stages": per_stage,
            "time_semantics": dict(self.TIME_SEMANTICS),
        }

    # ------------------------------------------------------------------
    # serialisation / rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-compatible representation."""
        return {
            "max_workers": self.max_workers,
            "total_wall_time": self.total_wall_time,
            "pool_rebuilds": self.pool_rebuilds,
            "backend": self.backend,
            "transfer_bytes": self.transfer_bytes,
            "status": self.status,
            "run_id": self.run_id,
            "records": [asdict(r) for r in self.records],
            "failures": [asdict(f) for f in self.failures],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunManifest":
        """Inverse of :meth:`to_dict`."""
        manifest = cls(max_workers=data["max_workers"],
                       total_wall_time=data.get("total_wall_time", 0.0),
                       pool_rebuilds=data.get("pool_rebuilds", 0),
                       backend=data.get("backend", ""),
                       transfer_bytes=data.get("transfer_bytes", 0),
                       status=data.get("status", STATUS_COMPLETED),
                       run_id=data.get("run_id", ""))
        for record in data.get("records", []):
            manifest.add(TaskRecord(**record))
        for failure in data.get("failures", []):
            manifest.add_failure(TaskFailure(**failure))
        return manifest

    @classmethod
    def load(cls, path: os.PathLike) -> "RunManifest":
        """Read a manifest previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: os.PathLike) -> None:
        """Write the manifest as JSON, atomically.

        Published via temp file + ``os.replace`` (same protocol as the
        artifact cache), so a crash mid-save can never leave a
        truncated or corrupt manifest behind — readers see either the
        old complete file or the new complete file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def render(self) -> str:
        """Human-readable per-stage summary table."""
        summary = self.summary()
        headline = (
            f"engine run: {summary['tasks']} tasks, "
            f"{summary['cache_hits']} cached / {summary['computed']} "
            f"computed, {summary['total_wall_time']:.2f}s wall, "
            f"max_workers={summary['max_workers']}")
        if self.backend:
            headline += f", backend={self.backend}"
        if summary["failed"] or summary["skipped"]:
            headline += (f", {summary['failed']} failed / "
                         f"{summary['skipped']} skipped")
        if summary["retries"]:
            headline += f", {summary['retries']} retries"
        if summary["pool_rebuilds"]:
            headline += f", {summary['pool_rebuilds']} pool rebuilds"
        if self.status != STATUS_COMPLETED:
            headline += f", status={self.status}"
        lines = [headline]
        for stage, row in summary["stages"].items():
            lines.append(
                f"  {stage:<16} {row['tasks']:>3} tasks  "
                f"{row['hits']:>3} hit {row['computed']:>3} computed  "
                f"{row['wall_span']:.2f}s span "
                f"({row['task_seconds']:.2f}s task time)")
        for failure in self.failures:
            detail = (f"{failure.error_type}: {failure.message}"
                      if failure.status == "failed"
                      else f"dependency {failure.upstream} failed")
            lines.append(f"  {failure.status:<7} {failure.task_id} "
                         f"[{failure.stage}] {detail}")
        return "\n".join(lines)
