"""Content-addressed, parallel execution engine.

Every expensive pipeline artefact (TCAD characterisation, staged
extraction, cell transient simulation) is produced by a *task*: a pure
function identified by a stage name, a JSON-canonical payload and the
tasks it depends on.  The engine

* fingerprints each task from its stage version, payload and dependency
  fingerprints (content addressing — two tasks with identical inputs
  share one artefact, two tasks differing anywhere get distinct ones);
* caches artefacts in memory and, via each stage's codec, in an on-disk
  JSON store (default ``~/.cache/repro``, overridable with the
  ``REPRO_CACHE_DIR`` environment variable), optionally backed by a
  shared remote tier (``REPRO_REMOTE_CACHE=http://host:port`` pointing
  at a ``python -m repro.cachesrv`` endpoint — see
  :mod:`repro.engine.remote` for its retry/breaker/integrity fault
  model);
* fans independent tasks out over a pluggable execution backend with
  dependency-aware scheduling — deterministic in-process ``serial``
  order, a persistent warm-worker ``pool`` (shared-memory NumPy
  transfer), or a multi-process filesystem ``workqueue`` over the
  shared cache (selected via ``Engine(backend=...)`` or
  ``REPRO_BACKEND``);
* records a :class:`RunManifest` of per-task wall time, cache hit/miss
  and worker id for every run;
* survives crashes and coexists across processes (see
  :mod:`repro.engine.durability`): runs can journal every task outcome
  to an append-only fsync'd :class:`RunJournal` and be resumed after a
  ``kill -9``, disk-cache access is serialised with advisory file
  locks, concurrent invocations sharing one cache directory
  single-flight their misses, the store is bounded by an LRU budget
  (``REPRO_CACHE_MAX_BYTES``), and SIGINT/SIGTERM drain gracefully
  within ``REPRO_SHUTDOWN_GRACE`` seconds.

See ``repro.engine.pipeline`` for the paper pipeline's stage
definitions and task builders, and ``repro.flows.durable`` for the
journalled flow runner and its ``python -m repro.flows`` CLI.
"""

from repro.engine.backends import (
    BACKEND_ENV,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    WorkQueueBackend,
    backend_for_workers,
    parse_backend_spec,
    resolve_backend,
)
from repro.engine.cache import ArtifactCache, parse_size, resolve_cache_dir
from repro.engine.remote import (
    REMOTE_CACHE_ENV,
    REMOTE_TIMEOUT_ENV,
    RemoteCache,
    resolve_remote_cache,
)
from repro.engine.durability import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    CancellationToken,
    GracefulShutdown,
    JournalState,
    RunJournal,
    list_runs,
    load_run,
    new_run_id,
    replay_journal,
    resolve_shutdown_grace,
    run_dir,
)
from repro.engine.executor import (
    Engine,
    EngineRun,
    Task,
    default_engine,
    reset_default_engine,
    resolve_worker_count,
    set_default_engine,
)
from repro.engine.fingerprint import canonicalize, fingerprint
from repro.engine.locks import FileLock, resolve_lock_timeout
from repro.engine.scheduler import Scheduler
from repro.engine.manifest import (
    RunManifest,
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    TaskFailure,
    TaskRecord,
)
from repro.engine.stages import (
    StageDef,
    get_stage,
    register_stage,
    registered_stages,
    unregister_stage,
)

__all__ = [
    "ArtifactCache",
    "BACKEND_ENV",
    "CancellationToken",
    "EXIT_FAILURE",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "EXIT_USAGE",
    "Engine",
    "EngineRun",
    "ExecutionBackend",
    "FileLock",
    "GracefulShutdown",
    "JournalState",
    "PoolBackend",
    "REMOTE_CACHE_ENV",
    "REMOTE_TIMEOUT_ENV",
    "RemoteCache",
    "RunJournal",
    "RunManifest",
    "STATUS_COMPLETED",
    "STATUS_INTERRUPTED",
    "Scheduler",
    "SerialBackend",
    "StageDef",
    "Task",
    "TaskFailure",
    "TaskRecord",
    "WorkQueueBackend",
    "backend_for_workers",
    "canonicalize",
    "default_engine",
    "fingerprint",
    "get_stage",
    "list_runs",
    "load_run",
    "new_run_id",
    "parse_backend_spec",
    "parse_size",
    "register_stage",
    "registered_stages",
    "replay_journal",
    "reset_default_engine",
    "resolve_backend",
    "resolve_cache_dir",
    "resolve_lock_timeout",
    "resolve_remote_cache",
    "resolve_shutdown_grace",
    "resolve_worker_count",
    "run_dir",
    "set_default_engine",
    "unregister_stage",
]
