"""Content-addressed, parallel execution engine.

Every expensive pipeline artefact (TCAD characterisation, staged
extraction, cell transient simulation) is produced by a *task*: a pure
function identified by a stage name, a JSON-canonical payload and the
tasks it depends on.  The engine

* fingerprints each task from its stage version, payload and dependency
  fingerprints (content addressing — two tasks with identical inputs
  share one artefact, two tasks differing anywhere get distinct ones);
* caches artefacts in memory and, via each stage's codec, in an on-disk
  JSON store (default ``~/.cache/repro``, overridable with the
  ``REPRO_CACHE_DIR`` environment variable);
* fans independent tasks out over a :class:`~concurrent.futures.
  ProcessPoolExecutor` with dependency-aware scheduling
  (``max_workers=1`` forces deterministic serial execution);
* records a :class:`RunManifest` of per-task wall time, cache hit/miss
  and worker id for every run.

See ``repro.engine.pipeline`` for the paper pipeline's stage
definitions and task builders.
"""

from repro.engine.cache import ArtifactCache, resolve_cache_dir
from repro.engine.executor import (
    Engine,
    EngineRun,
    Task,
    default_engine,
    reset_default_engine,
    resolve_worker_count,
    set_default_engine,
)
from repro.engine.fingerprint import canonicalize, fingerprint
from repro.engine.manifest import RunManifest, TaskFailure, TaskRecord
from repro.engine.stages import (
    StageDef,
    get_stage,
    register_stage,
    registered_stages,
    unregister_stage,
)

__all__ = [
    "ArtifactCache",
    "Engine",
    "EngineRun",
    "RunManifest",
    "StageDef",
    "Task",
    "TaskFailure",
    "TaskRecord",
    "canonicalize",
    "default_engine",
    "fingerprint",
    "get_stage",
    "register_stage",
    "registered_stages",
    "reset_default_engine",
    "resolve_cache_dir",
    "resolve_worker_count",
    "set_default_engine",
    "unregister_stage",
]
