"""The remote artifact cache tier: an HTTP client that cannot hurt you.

:class:`RemoteCache` talks to a ``python -m repro.cachesrv`` endpoint
(selected via ``REPRO_REMOTE_CACHE=http://host:port``) and composes
with the local memory+disk tiers as read-through / write-behind: a
local miss consults the remote store before computing, a local publish
is mirrored to the remote store best-effort.

Unlike the local tiers, the network fails *partially and slowly* —
timeouts, truncated bodies, flipped bytes, flapping endpoints.  The
client therefore wraps every operation in the full fault model:

* **budgets** — every HTTP operation carries a socket timeout
  (``REPRO_REMOTE_TIMEOUT``, default 2 s); a black-holed packet costs
  one budget, never a hung run;
* **retries** — failed operations retry with capped-exponential,
  *jittered* backoff (:class:`~repro.resilience.retry.RetryPolicy`,
  ``REPRO_REMOTE_RETRIES`` extra attempts) so N clients that failed
  together do not hammer a recovering endpoint together;
* **circuit breaker** — ``REPRO_REMOTE_BREAKER_THRESHOLD`` consecutive
  failures open a :class:`~repro.resilience.breaker.CircuitBreaker`
  and every further call is refused instantly for
  ``REPRO_REMOTE_BREAKER_RESET`` seconds; a dead endpoint then costs
  one failed probe per window instead of a timeout per task;
* **integrity** — every fetched body's SHA-256 is recomputed and
  compared to the digest it was published under, and the envelope must
  name the requested stage and key; a mismatch refetches once (wire
  corruption is transient), and a second mismatch quarantines the
  entry server-side (DELETE) — a corrupt remote entry must never
  poison a run;
* **degradation** — no remote failure ever raises into a run.  Every
  failure path returns a miss (fetch) or False (store); when the
  breaker opens, the tier reports :attr:`degraded` (surfaced as the
  ``engine.cache.remote.degraded`` gauge and serve's health ladder)
  and re-attaches automatically when a half-open probe succeeds.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.config import resolve_float, resolve_int
from repro.errors import (
    RemoteCacheError,
    RemoteCacheIntegrityError,
    RemoteCacheTimeout,
    RemoteCacheUnavailable,
)
from repro.observe import TIME_BUCKETS, get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy

#: Base URL of the remote cache endpoint; unset/empty = tier off.
REMOTE_CACHE_ENV = "REPRO_REMOTE_CACHE"

#: Per-operation budget [s] (connect + response, enforced by socket
#: timeout).
REMOTE_TIMEOUT_ENV = "REPRO_REMOTE_TIMEOUT"
DEFAULT_REMOTE_TIMEOUT = 2.0

#: Extra attempts per operation after the first failure.
REMOTE_RETRIES_ENV = "REPRO_REMOTE_RETRIES"
DEFAULT_REMOTE_RETRIES = 2

#: Consecutive failures that open the circuit breaker.
REMOTE_BREAKER_THRESHOLD_ENV = "REPRO_REMOTE_BREAKER_THRESHOLD"
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds an open breaker refuses calls before the half-open probe.
REMOTE_BREAKER_RESET_ENV = "REPRO_REMOTE_BREAKER_RESET"
DEFAULT_BREAKER_RESET = 10.0

#: Header carrying an entry body's SHA-256 (must match cachesrv).
DIGEST_HEADER = "X-Repro-Sha256"

#: Backoff shape of remote retries.  Deliberately short: the remote
#: tier is an accelerator, a run must never wait long for it.
RETRY_BACKOFF = 0.05
RETRY_BACKOFF_CAP = 0.5
RETRY_JITTER = 0.5

#: Fixed jitter seed: retry *timing* may vary, artifacts never depend
#: on it, and a fixed seed keeps chaos experiments repeatable.
JITTER_SEED = 0x5EED


def body_digest(body: bytes) -> str:
    """SHA-256 hex digest of an entry body."""
    return hashlib.sha256(body).hexdigest()


class RemoteCache:
    """HTTP client of one ``repro.cachesrv`` endpoint.

    All failure handling is internal: :meth:`fetch` returns ``None``
    and :meth:`store` returns ``False`` on any failure — callers
    (:class:`~repro.engine.cache.ArtifactCache`) treat the remote tier
    as strictly optional.
    """

    def __init__(self, base_url: str,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 breaker: Optional[CircuitBreaker] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = resolve_float(
            REMOTE_TIMEOUT_ENV, DEFAULT_REMOTE_TIMEOUT, timeout,
            positive=True)
        self.policy = RetryPolicy(
            retries=resolve_int(REMOTE_RETRIES_ENV, DEFAULT_REMOTE_RETRIES,
                                retries, minimum=0),
            backoff=RETRY_BACKOFF, backoff_cap=RETRY_BACKOFF_CAP,
            jitter=RETRY_JITTER)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=resolve_int(
                REMOTE_BREAKER_THRESHOLD_ENV, DEFAULT_BREAKER_THRESHOLD,
                positive=True),
            reset_timeout=resolve_float(
                REMOTE_BREAKER_RESET_ENV, DEFAULT_BREAKER_RESET,
                positive=True))
        self._rng = random.Random(JITTER_SEED)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.refused = 0
        self.integrity_failures = 0
        self.bytes_fetched = 0
        self.bytes_stored = 0
        self._was_degraded = False

    # ------------------------------------------------------------------
    # public tier operations (never raise)
    # ------------------------------------------------------------------
    def fetch(self, stage_name: str, key: str,
              _refetch: bool = True) -> Optional[Dict[str, Any]]:
        """The entry record for ``(stage, key)``, or None.

        Integrity-verified: the body digest must match the
        ``X-Repro-Sha256`` it was published under and the envelope must
        name this stage and key.  A corrupt body is refetched once
        (wire corruption is transient); a second mismatch quarantines
        the entry server-side and reports a miss.
        """
        result = self._attempt("GET", self._entry_path(stage_name, key))
        if result is None:
            return None
        status, body, headers = result
        if status == 404:
            self.misses += 1
            return None
        if status != 200:
            self._count_error("fetch", stage_name, key,
                              f"unexpected status {status}")
            return None
        record = self._verify(stage_name, key, body, headers)
        if record is None:
            self.integrity_failures += 1
            self._trace_integrity(stage_name, key)
            if _refetch:
                # First mismatch may be wire corruption: one clean
                # refetch before condemning the stored entry.
                return self.fetch(stage_name, key, _refetch=False)
            # Twice corrupt = rotted at rest: quarantine server-side
            # so no peer wastes fetches on the poisoned entry.
            self._attempt("DELETE", self._entry_path(stage_name, key))
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_fetched += len(body)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.remote.hits").inc()
        return record

    def store(self, stage_name: str, key: str, body: bytes) -> bool:
        """Write-behind one published entry body; False on any failure."""
        result = self._attempt(
            "PUT", self._entry_path(stage_name, key), body=body,
            headers={DIGEST_HEADER: body_digest(body)})
        if result is None:
            return False
        status, _, _ = result
        if status != 200:
            self._count_error("store", stage_name, key,
                              f"unexpected status {status}")
            return False
        self.stores += 1
        self.bytes_stored += len(body)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.remote.stores").inc()
        return True

    def healthz(self) -> Optional[Dict[str, Any]]:
        """The endpoint's health document, or None when unreachable."""
        result = self._attempt("GET", "/healthz")
        if result is None or result[0] != 200:
            return None
        try:
            return json.loads(result[1].decode("utf-8"))
        except ValueError:
            return None

    @property
    def degraded(self) -> bool:
        """True while the breaker is refusing remote operations."""
        return not self.breaker.closed

    def stats(self) -> Dict[str, Any]:
        """Counters + breaker snapshot for diagnostics and ``stats()``."""
        snapshot = self.breaker.snapshot()
        return {
            "url": self.base_url,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "refused": self.refused,
            "integrity_failures": self.integrity_failures,
            "bytes_fetched": self.bytes_fetched,
            "bytes_stored": self.bytes_stored,
            "breaker_state": snapshot["state"],
            "breaker_opened_total": snapshot["opened_total"],
            "breaker_reattached_total": snapshot["reattached_total"],
            "degraded": self.degraded,
        }

    # ------------------------------------------------------------------
    # the fault model: breaker-gated, retried, budgeted HTTP
    # ------------------------------------------------------------------
    def _attempt(self, method: str, path: str, body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None,
                 ) -> Optional[Tuple[int, bytes, Dict[str, str]]]:
        """One breaker-gated, retried operation; None = gave up."""
        tracer = get_tracer()
        last_error: Optional[RemoteCacheError] = None
        for attempt in range(1, self.policy.attempts + 1):
            if not self.breaker.allow():
                self.refused += 1
                self._publish_degraded()
                return None
            started = time.monotonic()
            try:
                result = self._request(method, path, body, headers)
            except RemoteCacheError as exc:
                last_error = exc
                self.breaker.record_failure()
                self._publish_degraded()
                if tracer.enabled:
                    tracer.counter("engine.cache.remote.errors").inc()
                    tracer.event("engine.cache.remote.error",
                                 method=method, path=path, code=exc.code,
                                 attempt=attempt, message=str(exc))
                if attempt < self.policy.attempts:
                    time.sleep(self.policy.delay(attempt, self._rng))
                continue
            self.breaker.record_success()
            self._publish_degraded()
            if tracer.enabled:
                tracer.histogram("engine.cache.remote.op_s",
                                 TIME_BUCKETS).observe(
                    time.monotonic() - started)
            return result
        if last_error is not None:
            self.errors += 1
        return None

    def _request(self, method: str, path: str, body: Optional[bytes],
                 headers: Optional[Dict[str, str]],
                 ) -> Tuple[int, bytes, Dict[str, str]]:
        """One raw HTTP exchange, normalised to the remote error family.

        HTTP status responses below 500 are *answers* (a 404 miss is a
        healthy endpoint), returned as data; 5xx and every transport
        failure (refused connection, timeout, truncated response) raise
        the matching :class:`~repro.errors.RemoteCacheError` subclass.
        """
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers=dict(headers or {}))
        try:
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    payload = response.read()
                    status = response.status
                    response_headers = dict(response.headers.items())
            except urllib.error.HTTPError as exc:
                # Status errors still carry a readable body.
                payload = exc.read()
                status = exc.code
                response_headers = dict(exc.headers.items())
        except (socket.timeout, TimeoutError) as exc:
            raise RemoteCacheTimeout(
                f"{method} {path} exceeded {self.timeout:g}s "
                f"budget") from exc
        except urllib.error.URLError as exc:
            reason = getattr(exc, "reason", exc)
            if isinstance(reason, (socket.timeout, TimeoutError)):
                raise RemoteCacheTimeout(
                    f"{method} {path} exceeded {self.timeout:g}s "
                    f"budget") from exc
            raise RemoteCacheUnavailable(
                f"{method} {path} failed: {reason}") from exc
        except (ConnectionError, http.client.HTTPException,
                OSError) as exc:
            # Dropped mid-response, truncated chunk, bad status line...
            raise RemoteCacheUnavailable(
                f"{method} {path} failed: "
                f"{type(exc).__name__}: {exc}") from exc
        if status >= 500:
            raise RemoteCacheUnavailable(
                f"{method} {path} returned {status}")
        return status, payload, response_headers

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def _verify(self, stage_name: str, key: str, body: bytes,
                headers: Dict[str, str]) -> Optional[Dict[str, Any]]:
        """Digest + envelope verification; None = corrupt."""
        claimed = ""
        for name, value in headers.items():
            if name.lower() == DIGEST_HEADER.lower():
                claimed = value.strip().lower()
                break
        if not claimed or body_digest(body) != claimed:
            return None
        try:
            record = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if (not isinstance(record, dict)
                or record.get("stage") != stage_name
                or record.get("key") != key
                or "artifact" not in record):
            return None
        return record

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def _publish_degraded(self) -> None:
        """Flip the degraded gauge/events on breaker state changes."""
        degraded = self.degraded
        if degraded == self._was_degraded:
            return
        self._was_degraded = degraded
        tracer = get_tracer()
        if tracer.enabled:
            tracer.gauge("engine.cache.remote.degraded").set(
                1.0 if degraded else 0.0)
            tracer.event(
                "engine.cache.remote.degraded" if degraded
                else "engine.cache.remote.reattached",
                url=self.base_url, **self.breaker.snapshot())

    def _count_error(self, op: str, stage_name: str, key: str,
                     message: str) -> None:
        self.errors += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.remote.errors").inc()
            tracer.event("engine.cache.remote.error", op=op,
                         stage=stage_name, key=key, message=message)

    def _trace_integrity(self, stage_name: str, key: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.remote.integrity").inc()
            tracer.event("engine.cache.remote.integrity",
                         stage=stage_name, key=key)

    @staticmethod
    def _entry_path(stage_name: str, key: str) -> str:
        return f"/artifacts/{stage_name}/{key}"


def resolve_remote_cache(remote=None) -> Optional[RemoteCache]:
    """Resolve the remote tier: explicit > ``REPRO_REMOTE_CACHE`` > off.

    ``remote`` may be a ready :class:`RemoteCache`, a base URL string,
    or ``None`` (consult the environment; unset/empty disables the
    tier).
    """
    if isinstance(remote, RemoteCache):
        return remote
    url = remote if remote is not None else os.environ.get(
        REMOTE_CACHE_ENV, "")
    if not url:
        return None
    return RemoteCache(str(url))
