"""Crash-safe run durability: journals, pins, graceful shutdown.

A *durable* run writes an append-only, fsync'd journal under the cache
directory (``<cache_dir>/runs/<run_id>/journal.jsonl``): one ``begin``
record carrying the flow parameters, one ``task`` record per task
outcome, ``resume`` markers, and an ``end`` record.  Because every
artefact is content-addressed, the journal does not need to carry data
— after a ``kill -9`` at any point, :func:`replay_journal` recovers the
longest consistent record prefix (a torn final line is discarded), and
a resumed run simply re-executes the same graph: completed entries are
*trusted only through the content-addressed disk cache* (the journal
says what finished; the cache's fingerprint/format/version validation
says whether the bytes are still good), everything else is recomputed.
At most the in-flight tasks of the killed process are lost.

The same directory holds the run's ``ACTIVE`` marker and ``pins.json``
(the graph's artefact keys): LRU eviction never removes an entry pinned
by a live — or recently interrupted, hence resumable — run.

Graceful shutdown: :class:`GracefulShutdown` converts SIGINT/SIGTERM
into a :class:`CancellationToken` the engine polls at task boundaries.
The engine stops scheduling, drains in-flight tasks for up to
``REPRO_SHUTDOWN_GRACE`` seconds, then raises
:class:`~repro.errors.RunInterrupted` with the partial manifest; the
CLI flushes journal + manifest and exits :data:`EXIT_INTERRUPTED` so a
wrapper can auto-resume.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Set

from repro.config import require_finite_float, resolve_float
from repro.errors import ReproError

#: Environment variable bounding the shutdown drain window [s].
SHUTDOWN_GRACE_ENV = "REPRO_SHUTDOWN_GRACE"

#: Default drain window when the env var is unset [s].
DEFAULT_SHUTDOWN_GRACE = 5.0

#: Subdirectory of the cache dir holding per-run journals.
RUNS_DIRNAME = "runs"

#: Journal schema version (bump on incompatible record changes).
JOURNAL_FORMAT = 1

#: Age past which an ``ACTIVE`` marker no longer pins cache entries.
#: Bounds the eviction-pin leak of a run that was ``kill -9``'d and
#: never resumed (a resume refreshes the marker).
PIN_TTL_S = 24 * 3600.0

#: Journal directories older than this are removed by maintenance.
RUN_EXPIRY_S = 14 * 24 * 3600.0

#: Process exit codes of the resume-aware CLIs.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
#: Distinct "interrupted but resumable" code (EX_TEMPFAIL) — a wrapper
#: seeing it can re-invoke with ``resume <run_id>``.
EXIT_INTERRUPTED = 75


def new_run_id() -> str:
    """A unique, sortable run identifier (utc time + pid + entropy)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{os.urandom(3).hex()}"


def runs_root(cache_dir: os.PathLike) -> Path:
    """The per-run journal root under a cache directory."""
    return Path(cache_dir) / RUNS_DIRNAME


def run_dir(cache_dir: os.PathLike, run_id: str) -> Path:
    """One run's journal directory."""
    if not run_id or "/" in run_id or run_id.startswith("."):
        raise ReproError(f"invalid run id {run_id!r}")
    return runs_root(cache_dir) / run_id


# ----------------------------------------------------------------------
# the append-only journal
# ----------------------------------------------------------------------
class RunJournal:
    """Append-only fsync'd JSONL journal of one run.

    Every :meth:`append` writes one canonical JSON line, flushes and
    fsyncs — after a crash the file holds a consistent prefix plus at
    most one torn final line, which :func:`replay_journal` discards.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, path: os.PathLike, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._handle: Optional[IO[str]] = None

    @classmethod
    def for_run(cls, cache_dir: os.PathLike, run_id: str,
                fsync: bool = True) -> "RunJournal":
        """The journal of one run under one cache directory."""
        return cls(run_dir(cache_dir, run_id) / cls.FILENAME, fsync=fsync)

    @property
    def exists(self) -> bool:
        return self.path.is_file()

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (one JSON line)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay_journal(path: os.PathLike) -> List[Dict[str, Any]]:
    """Records of a journal file: the longest consistent prefix.

    Reading stops at the first line that is not complete valid JSON —
    a crash (or ``kill -9``) can tear at most the final append, so
    everything before the tear is trusted and everything after it is
    not.  Replaying is a pure read: calling it twice (or on a journal
    that is being appended to) yields a stable, order-preserving
    prefix.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return records
    for raw in data.split(b"\n"):
        if not raw:
            continue
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
    return records


@dataclass
class JournalState:
    """What a replayed journal says about a run.

    ``tasks`` maps task id to its *latest* journalled status record
    (idempotent under replay: later records for the same task win, so
    resumed runs that re-record a task converge to one entry).
    """

    run_id: str = ""
    flow: Optional[Dict[str, Any]] = None
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    status: str = "unknown"
    resumes: int = 0
    records: int = 0

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "JournalState":
        state = cls(records=len(records))
        for record in records:
            kind = record.get("type")
            if kind == "begin":
                state.run_id = record.get("run_id", "")
                state.flow = record.get("flow")
                state.status = "running"
            elif kind == "resume":
                state.resumes += 1
                state.status = "running"
            elif kind == "task":
                task_id = record.get("id")
                if task_id:
                    state.tasks[str(task_id)] = record
            elif kind == "end":
                state.status = record.get("status", "unknown")
        return state

    @property
    def begun(self) -> bool:
        """True when the journal has a readable ``begin`` record."""
        return self.flow is not None or bool(self.run_id)

    def done(self) -> Dict[str, Dict[str, Any]]:
        """Tasks whose latest record is a completed artefact."""
        return {tid: rec for tid, rec in self.tasks.items()
                if rec.get("status") == "done"}

    def keys(self, status: Optional[str] = None) -> Set[str]:
        """Artefact keys journalled for tasks (optionally by status)."""
        return {rec["key"] for rec in self.tasks.values()
                if "key" in rec
                and (status is None or rec.get("status") == status)}


def load_run(cache_dir: os.PathLike, run_id: str) -> JournalState:
    """Replay one run's journal into a :class:`JournalState`."""
    path = run_dir(cache_dir, run_id) / RunJournal.FILENAME
    if not path.is_file():
        raise ReproError(f"no journal for run {run_id!r} under "
                         f"{runs_root(cache_dir)}")
    state = JournalState.from_records(replay_journal(path))
    if not state.begun:
        raise ReproError(f"journal of run {run_id!r} has no readable "
                         f"begin record (torn before first fsync?)")
    if not state.run_id:
        state.run_id = run_id
    return state


def list_runs(cache_dir: os.PathLike) -> List[Dict[str, Any]]:
    """Summaries of every journalled run (newest first)."""
    root = runs_root(cache_dir)
    out: List[Dict[str, Any]] = []
    if not root.is_dir():
        return out
    for entry in sorted(root.iterdir(), reverse=True):
        journal = entry / RunJournal.FILENAME
        if not journal.is_file():
            continue
        state = JournalState.from_records(replay_journal(journal))
        done = len(state.done())
        out.append({
            "run_id": state.run_id or entry.name,
            "status": state.status,
            "tasks_done": done,
            "tasks_failed": len(state.tasks) - done,
            "resumes": state.resumes,
            "active": (entry / "ACTIVE").is_file(),
        })
    return out


# ----------------------------------------------------------------------
# pins: what eviction must not touch
# ----------------------------------------------------------------------
def mark_active(directory: os.PathLike) -> None:
    """Create/refresh the run's ``ACTIVE`` marker (mtime = heartbeat)."""
    path = Path(directory) / "ACTIVE"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.touch()


def clear_active(directory: os.PathLike) -> None:
    """Remove the ``ACTIVE`` marker (run finished; pins lapse)."""
    try:
        os.unlink(Path(directory) / "ACTIVE")
    except OSError:
        pass


def write_pins(directory: os.PathLike, keys) -> None:
    """Persist the artefact keys a run depends on (atomic publish)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tmp = directory / "pins.json.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(sorted(keys), handle)
    os.replace(tmp, directory / "pins.json")


def active_pins(cache_dir: os.PathLike,
                ttl: float = PIN_TTL_S) -> Set[str]:
    """Keys pinned by runs whose ``ACTIVE`` marker is fresher than ttl.

    Covers both live runs in other processes and interrupted-but-
    resumable runs; a marker the holder never cleared (``kill -9``,
    never resumed) stops pinning after ``ttl`` seconds.
    """
    pins: Set[str] = set()
    root = runs_root(cache_dir)
    if not root.is_dir():
        return pins
    now = time.time()
    for entry in root.iterdir():
        marker = entry / "ACTIVE"
        try:
            if now - marker.stat().st_mtime > ttl:
                continue
        except OSError:
            continue
        try:
            with open(entry / "pins.json", "r", encoding="utf-8") as fh:
                pins.update(str(k) for k in json.load(fh))
        except (OSError, ValueError):
            continue
    return pins


def expire_runs(cache_dir: os.PathLike,
                max_age: float = RUN_EXPIRY_S) -> int:
    """Delete inactive journal directories older than ``max_age``."""
    root = runs_root(cache_dir)
    if not root.is_dir():
        return 0
    removed = 0
    now = time.time()
    for entry in list(root.iterdir()):
        if (entry / "ACTIVE").is_file():
            continue
        try:
            age = now - entry.stat().st_mtime
        except OSError:
            continue
        if age <= max_age:
            continue
        for child in list(entry.iterdir()):
            try:
                os.unlink(child)
            except OSError:
                pass
        try:
            entry.rmdir()
            removed += 1
        except OSError:
            pass
    return removed


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------
def resolve_shutdown_grace(grace: Optional[float] = None) -> float:
    """Drain window: explicit > ``REPRO_SHUTDOWN_GRACE`` > default.

    Zero is allowed (drain nothing, stop immediately); negative, NaN,
    infinite and non-numeric values are rejected up front.
    """
    return resolve_float(SHUTDOWN_GRACE_ENV, DEFAULT_SHUTDOWN_GRACE,
                         grace, minimum=0.0)


class CancellationToken:
    """A cooperative stop request the engine polls at task boundaries.

    ``grace`` is how long the engine may keep draining in-flight tasks
    after the token is set before it kills the pool.

    A token can also carry a *deadline*: an absolute ``time.monotonic``
    instant after which the token counts as set without anyone calling
    :meth:`request`.  This is how an external caller (the
    characterisation service, a batch wrapper) bounds a run's wall
    time — the engine observes expiry at the next task boundary and
    winds the run down exactly like a signal would, except the drain
    grace collapses to zero (the budget is already spent).
    """

    def __init__(self, grace: Optional[float] = None,
                 deadline: Optional[float] = None):
        self.grace = resolve_shutdown_grace(grace)
        self._event = threading.Event()
        self.signum: Optional[int] = None
        #: Absolute ``time.monotonic`` expiry, or ``None`` for no bound.
        self.deadline = deadline
        self._reason: Optional[str] = None

    def request(self, signum: Optional[int] = None,
                reason: Optional[str] = None) -> None:
        """Set the token (idempotent)."""
        if self.signum is None:
            self.signum = signum
        if self._reason is None:
            self._reason = reason
        self._event.set()

    def set_deadline(self, seconds_from_now: float) -> None:
        """Arm (or tighten) the expiry ``seconds_from_now`` ahead."""
        require_finite_float("deadline", seconds_from_now, minimum=0.0)
        expiry = time.monotonic() + seconds_from_now
        if self.deadline is None or expiry < self.deadline:
            self.deadline = expiry

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return (self.deadline is not None
                and time.monotonic() >= self.deadline)

    def remaining(self) -> Optional[float]:
        """Seconds until expiry (>= 0), or ``None`` for no deadline."""
        if self.deadline is None:
            return None
        return max(self.deadline - time.monotonic(), 0.0)

    def is_set(self) -> bool:
        return self._event.is_set() or self.expired

    @property
    def reason(self) -> str:
        if self._reason is not None:
            return self._reason
        if self.signum is not None:
            try:
                return signal.Signals(self.signum).name
            except ValueError:  # pragma: no cover - unnamed signal
                return f"signal {self.signum}"
        if self.expired and not self._event.is_set():
            return "deadline"
        return "cancelled"


class GracefulShutdown:
    """Scope that turns SIGINT/SIGTERM into a cancellation token.

    Inside the scope the first signal sets :attr:`token` (the run winds
    down within the grace window); a second signal restores default
    handling semantics by raising :class:`KeyboardInterrupt` — an
    impatient operator can always bail immediately.  Handler
    installation silently degrades to signal-less operation off the
    main thread (the token still works programmatically).
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, grace: Optional[float] = None):
        self.token = CancellationToken(grace)
        self._previous: Dict[int, Any] = {}
        self.installed = False

    def _handle(self, signum, frame) -> None:
        if self.token.is_set():
            raise KeyboardInterrupt
        self.token.request(signum)

    def __enter__(self) -> "GracefulShutdown":
        try:
            for signum in self.SIGNALS:
                self._previous[signum] = signal.signal(signum,
                                                       self._handle)
            self.installed = True
        except ValueError:  # pragma: no cover - non-main thread
            self._restore()
        return self

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        self._previous.clear()
        self.installed = False

    def __exit__(self, *exc_info) -> None:
        self._restore()
