"""The engine facade: task graphs in, artefacts out.

``Engine.run`` takes a list of :class:`Task` descriptions, fingerprints
them (stage version + payload + dependency fingerprints, so content
addressing composes through the graph), serves whatever it can from the
:class:`~repro.engine.cache.ArtifactCache`, and hands the rest to the
:class:`~repro.engine.scheduler.Scheduler`, which drives a pluggable
:class:`~repro.engine.backends.ExecutionBackend`:

``serial``
    deterministic in-process execution in topological order;
``pool`` / ``pool:N``
    persistent warm worker processes — modules imported once, NumPy
    payloads moved through ``multiprocessing.shared_memory``;
``workqueue``
    a filesystem work queue under the shared cache directory, so N
    independent ``python -m repro.flows`` invocations cooperatively
    drain one graph (lease files + heartbeats, work-stealing).

Backends execute the same pure stage functions on the same inputs, so
their artefacts are bit-identical; the only difference a manifest can
show is wall time and worker ids.  Selection: ``Engine(backend=...)``
(spec string or instance) > the ``REPRO_BACKEND`` environment variable
> the deprecated ``max_workers=`` / ``REPRO_MAX_WORKERS`` width > a
machine-width pool.

Failure domain (see :mod:`repro.resilience`): every task gets the
engine's :class:`~repro.resilience.retry.RetryPolicy` — capped
exponential backoff between attempts (``REPRO_TASK_RETRIES``) and an
optional wall-time budget per task (``REPRO_TASK_TIMEOUT``, enforced on
backends that can preempt a running task).  A dead worker surfaces as a
``crashed`` result: the task is resubmitted without burning a retry
attempt, bounded by a crash budget.  With ``on_error="continue"`` a
task that exhausts its attempts is recorded as a
:class:`~repro.engine.manifest.TaskFailure`, its dependents are marked
``skipped``, and every independent subgraph still runs to completion.

Durability (see :mod:`repro.engine.durability`): ``run`` optionally
journals every task outcome to an append-only fsync'd
:class:`~repro.engine.durability.RunJournal` (crash-safe resume), pins
the graph's artefact keys against cache eviction for the duration of
the run, honours a
:class:`~repro.engine.durability.CancellationToken` at task boundaries
(graceful shutdown: stop scheduling, drain in-flight work within the
grace window, raise :class:`~repro.errors.RunInterrupted` with the
partial manifest), and — when several invocations share one cache
directory — routes cache misses through the cache's cross-process
single-flight protocol so the same fingerprint is not computed N
times.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import require_int
from repro.deprecation import warn_deprecated
from repro.engine.backends import (
    BACKEND_ENV,
    ExecutionBackend,
    SerialBackend,
    backend_for_workers,
    resolve_backend,
)
from repro.engine.cache import ArtifactCache
from repro.engine.durability import CancellationToken, RunJournal
from repro.engine.fingerprint import combine_fingerprints, fingerprint
from repro.engine.manifest import RunManifest, TaskFailure
from repro.engine.scheduler import Scheduler
from repro.engine.stages import get_stage
from repro.errors import EngineRunError, ReproError
from repro.observe import activate, resolve_tracer
from repro.resilience.retry import RetryPolicy, resolve_retry_policy

#: Environment variable overriding the auto-detected worker count
#: (deprecated in favour of ``REPRO_BACKEND=pool:N``).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Characters of formatted traceback kept in a TaskFailure record.
TRACEBACK_TAIL = 1500

#: Valid ``on_error`` modes.
ON_ERROR_MODES = ("raise", "continue")


@dataclass(frozen=True)
class Task:
    """One node of a task graph.

    ``payload`` must be JSON-canonical data (see
    :func:`repro.engine.fingerprint.canonicalize`) carrying everything
    the stage's compute function needs besides dependency artefacts;
    ``deps`` names the tasks whose artefacts it consumes.
    """

    id: str
    stage: str
    payload: Any = None
    deps: Tuple[str, ...] = ()


@dataclass
class EngineRun:
    """Artefacts and manifest of one completed run.

    After an ``on_error="continue"`` run, :attr:`failed` and
    :attr:`skipped` map task ids to their
    :class:`~repro.engine.manifest.TaskFailure` records and
    :attr:`error` aggregates them into an
    :class:`~repro.errors.EngineRunError` (``None`` when all succeeded).
    """

    artifacts: Dict[str, Any] = field(default_factory=dict)
    manifest: RunManifest = field(default_factory=lambda: RunManifest(1))

    def __getitem__(self, task_id: str) -> Any:
        return self.artifacts[task_id]

    @property
    def failed(self) -> Dict[str, TaskFailure]:
        """Tasks whose compute failed after every attempt."""
        return {f.task_id: f for f in self.manifest.failed()}

    @property
    def skipped(self) -> Dict[str, TaskFailure]:
        """Tasks skipped because a dependency failed."""
        return {f.task_id: f for f in self.manifest.skipped()}

    @property
    def ok(self) -> bool:
        """True when every task produced an artefact."""
        return not self.manifest.failures

    @property
    def error(self) -> Optional[EngineRunError]:
        """Aggregated failure report, or ``None`` for a clean run."""
        if self.ok:
            return None
        return EngineRunError(
            f"{len(self.manifest.failed())} task(s) failed, "
            f"{len(self.manifest.skipped())} skipped",
            failures=self.manifest.failures)

    def raise_for_failures(self) -> None:
        """Raise :attr:`error` when the run had failures."""
        error = self.error
        if error is not None:
            raise error


def resolve_worker_count(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit > ``REPRO_MAX_WORKERS`` > cpu count.

    Malformed values fail at startup with a :class:`ConfigError`
    naming their source (the env var or the parameter).
    """
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV)
        if env:
            max_workers = require_int(MAX_WORKERS_ENV, env, minimum=1)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return require_int("max_workers", max_workers, minimum=1)


def _traceback_tail(exc: BaseException) -> str:
    """Last ``TRACEBACK_TAIL`` characters of the formatted traceback."""
    try:
        text = "".join(traceback_module.format_exception(
            type(exc), exc, exc.__traceback__))
    except Exception:  # pragma: no cover - formatting never critical
        text = repr(exc)
    return text[-TRACEBACK_TAIL:]


class Engine:
    """Content-addressed task-graph runner.

    Parameters
    ----------
    backend:
        Execution backend: a spec string (``"serial"``, ``"pool"``,
        ``"pool:N"``, ``"workqueue"``) or an
        :class:`~repro.engine.backends.ExecutionBackend` instance to
        share between engines.  ``None`` resolves ``REPRO_BACKEND``,
        then the deprecated worker-count path, then defaults to a
        machine-width pool (serial on single-core machines).
    max_workers:
        Deprecated — pass ``backend="pool:N"`` (or ``"serial"`` for
        ``N=1``) instead.  Still honoured through that mapping.
    cache:
        Share an existing :class:`ArtifactCache`; by default each engine
        owns one resolved from ``cache_dir`` / ``REPRO_CACHE_DIR``.
    remote:
        Remote cache tier for the engine-owned cache: a
        :class:`~repro.engine.remote.RemoteCache`, a base URL string,
        or ``None`` (resolve ``REPRO_REMOTE_CACHE``; unset = tier
        off).  Ignored when ``cache`` is shared in.
    observe:
        Observability control: ``None`` inherits the active tracer
        (``REPRO_TRACE`` env var by default), ``True``/``False`` force
        tracing on/off, a path enables tracing and exports trace files
        there after every run, a :class:`repro.observe.Tracer` records
        into that instance.  Tracing never changes artefacts — only
        what is recorded about producing them.
    retry_policy:
        Per-task :class:`~repro.resilience.retry.RetryPolicy`; ``None``
        resolves from ``REPRO_TASK_RETRIES`` / ``REPRO_TASK_TIMEOUT``.
    on_error:
        Default failure mode of :meth:`run`: ``"raise"`` re-raises the
        first task error after its retries are exhausted (pre-1.3
        behaviour), ``"continue"`` records failures in the manifest,
        skips dependents and completes every independent subgraph.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk: bool = True,
                 observe: Any = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 on_error: str = "raise",
                 backend: Optional[Union[str, ExecutionBackend]] = None,
                 remote=None):
        if on_error not in ON_ERROR_MODES:
            raise ReproError(f"on_error must be one of {ON_ERROR_MODES}, "
                             f"got {on_error!r}")
        if max_workers is not None:
            warn_deprecated(
                "Engine(max_workers=N) is deprecated; pass "
                "backend='pool:N' (or 'serial' for N=1), or an "
                "ExecutionBackend instance")
        #: True when this engine constructed the backend itself (and
        #: therefore owns its lifetime); False for shared instances.
        self.owns_backend = not isinstance(backend, ExecutionBackend)
        resolved = resolve_backend(backend)
        if resolved is None:
            if max_workers is None and os.environ.get(MAX_WORKERS_ENV):
                warn_deprecated(
                    f"{MAX_WORKERS_ENV} is deprecated; set "
                    f"{BACKEND_ENV}='pool:N' (or 'serial') instead")
            resolved = backend_for_workers(max_workers)
        self.backend = resolved
        self.cache = cache or ArtifactCache(cache_dir=cache_dir,
                                            use_disk=use_disk,
                                            remote=remote)
        if (self.backend.requires_disk_cache
                and self.cache.cache_dir is None):
            raise ReproError(
                f"backend {self.backend.name!r} needs a shared on-disk "
                f"cache; pass cache_dir=... or set REPRO_CACHE_DIR")
        self.observe = observe
        self.retry_policy = resolve_retry_policy(retry_policy)
        self.on_error = on_error
        self.last_manifest: Optional[RunManifest] = None

    @property
    def max_workers(self) -> int:
        """Concurrent task capacity of the engine's backend."""
        return self.backend.workers

    def shutdown(self) -> None:
        """Release backend resources (only backends this engine owns)."""
        if self.owns_backend:
            self.backend.shutdown()

    def _tracer(self):
        """The tracer this engine's runs record into."""
        return resolve_tracer(self.observe)

    # ------------------------------------------------------------------
    # graph preparation
    # ------------------------------------------------------------------
    @staticmethod
    def _topological_order(tasks: Sequence[Task]) -> List[Task]:
        by_id = {}
        for task in tasks:
            if task.id in by_id:
                raise ReproError(f"duplicate task id {task.id!r}")
            by_id[task.id] = task
        order: List[Task] = []
        state: Dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(task_id: str, chain: Tuple[str, ...]) -> None:
            if state.get(task_id) == 2:
                return
            if state.get(task_id) == 1:
                raise ReproError(
                    f"task graph cycle: {' -> '.join(chain + (task_id,))}")
            if task_id not in by_id:
                raise ReproError(f"unknown dependency {task_id!r}")
            state[task_id] = 1
            for dep in by_id[task_id].deps:
                visit(dep, chain + (task_id,))
            state[task_id] = 2
            order.append(by_id[task_id])

        for task in tasks:
            visit(task.id, ())
        return order

    def task_keys(self, tasks: Sequence[Task]) -> Dict[str, str]:
        """Content-addressed fingerprint of every task in the graph."""
        keys: Dict[str, str] = {}
        for task in self._topological_order(tasks):
            stage = get_stage(task.stage)
            keys[task.id] = combine_fingerprints(
                task.stage, str(stage.version), fingerprint(task.payload),
                *[keys[dep] for dep in task.deps])
        return keys

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task],
            on_error: Optional[str] = None, *,
            journal: Optional[RunJournal] = None,
            cancellation: Optional[CancellationToken] = None,
            deadline: Optional[float] = None) -> EngineRun:
        """Materialise every task's artefact, cheapest way available.

        ``on_error`` overrides the engine default for this run (see the
        constructor).  With ``"continue"``, inspect the returned run's
        :attr:`EngineRun.failed` / :attr:`EngineRun.skipped` /
        :attr:`EngineRun.error` for what (if anything) degraded.

        ``journal`` makes the run durable: every task outcome is
        appended (fsync'd) as it happens, so a killed process can be
        resumed from the journal plus the content-addressed cache.
        ``cancellation`` is polled at task boundaries; once set the
        engine stops scheduling, drains in-flight tasks within the
        token's grace window and raises
        :class:`~repro.errors.RunInterrupted` carrying the partial
        manifest (``status == "interrupted"``).

        ``deadline`` bounds the run's wall time in seconds: it arms
        (or tightens) the cancellation token's deadline, so an
        overrunning run stops at the next task boundary instead of
        holding a worker forever.  Artefacts finished before expiry
        stay journalled and cached — a retry resumes, not restarts.
        """
        if deadline is not None:
            if cancellation is None:
                cancellation = CancellationToken()
            cancellation.set_deadline(deadline)
        if on_error is None:
            on_error = self.on_error
        if on_error not in ON_ERROR_MODES:
            raise ReproError(f"on_error must be one of {ON_ERROR_MODES}, "
                             f"got {on_error!r}")
        tracer = self._tracer()
        with activate(tracer):
            with tracer.span("engine.run", tasks=len(tasks),
                             max_workers=self.max_workers,
                             backend=self.backend.name) as span:
                result = self._run_traced(tasks, on_error,
                                          journal=journal,
                                          cancellation=cancellation)
                if tracer.enabled:
                    summary = result.manifest.summary()
                    span.set(cache_hits=summary["cache_hits"],
                             computed=summary["computed"],
                             failed=summary["failed"],
                             skipped=summary["skipped"])
                    tracer.counter("engine.tasks").inc(summary["tasks"])
                    tracer.counter("engine.cache_hits").inc(
                        summary["cache_hits"])
                    tracer.counter("engine.computed").inc(
                        summary["computed"])
                    tracer.gauge("engine.cache.hit_rate").set(
                        result.manifest.hit_rate())
        if tracer.enabled and tracer.out_dir is not None:
            tracer.export_all()
        return result

    def _run_traced(self, tasks: Sequence[Task], on_error: str,
                    journal: Optional[RunJournal] = None,
                    cancellation: Optional[CancellationToken] = None,
                    ) -> EngineRun:
        run_start = time.perf_counter()
        order = self._topological_order(tasks)
        keys = self.task_keys(order)
        result = EngineRun(manifest=RunManifest(
            max_workers=self.max_workers, backend=self.backend.name))
        self.last_manifest = result.manifest
        scheduler = Scheduler(self.cache, self.retry_policy,
                              journal=journal, cancellation=cancellation,
                              run_start=run_start)
        pinned = set(keys.values())
        self.cache.pin(pinned)

        try:
            pending = [task for task in order
                       if not scheduler.try_cache(task, keys[task.id],
                                                  result)]
            scheduler.check_cancelled(result)
            if pending:
                backend = self.backend
                if (len(pending) == 1 and backend.inline_single
                        and not isinstance(backend, SerialBackend)):
                    # Degenerate graph: one task gains nothing from
                    # worker transport — run it in-process (matches the
                    # pre-1.5 single-task serial inlining).
                    backend = SerialBackend()
                backend.start(self.cache)
                transfer_before = backend.transfer.total_bytes
                try:
                    scheduler.execute(pending, keys, result, backend,
                                      on_error)
                finally:
                    result.manifest.transfer_bytes = (
                        backend.transfer.total_bytes - transfer_before)
        finally:
            self.cache.unpin(pinned)
            result.manifest.total_wall_time = (time.perf_counter()
                                               - run_start)
        return result


# ----------------------------------------------------------------------
# the process-wide default engine (what the thin shims route through)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The lazily created process-wide engine the API shims share."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Swap the default engine (returns the previous one)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


def reset_default_engine() -> None:
    """Drop the default engine (a fresh one resolves env vars anew)."""
    set_default_engine(None)
