"""The task-graph executor.

``Engine.run`` takes a list of :class:`Task` descriptions, fingerprints
them (stage version + payload + dependency fingerprints, so content
addressing composes through the graph), serves whatever it can from the
:class:`~repro.engine.cache.ArtifactCache`, and computes the rest —
serially in deterministic topological order when ``max_workers == 1``,
otherwise fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` with dependency-aware scheduling: a task is
submitted the moment its last dependency materialises, so extraction
tasks feed PPA tasks as they complete rather than behind a barrier.

Serial and parallel runs execute the same pure stage functions on the
same inputs, so their artefacts are bit-identical; the only difference
a manifest can show is wall time and worker ids.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import ArtifactCache
from repro.engine.fingerprint import combine_fingerprints, fingerprint
from repro.engine.manifest import RunManifest, TaskRecord
from repro.engine.stages import get_stage
from repro.errors import ReproError
from repro.observe import TIME_BUCKETS, activate, get_tracer, resolve_tracer

#: Environment variable overriding the auto-detected worker count.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


@dataclass(frozen=True)
class Task:
    """One node of a task graph.

    ``payload`` must be JSON-canonical data (see
    :func:`repro.engine.fingerprint.canonicalize`) carrying everything
    the stage's compute function needs besides dependency artefacts;
    ``deps`` names the tasks whose artefacts it consumes.
    """

    id: str
    stage: str
    payload: Any = None
    deps: Tuple[str, ...] = ()


@dataclass
class EngineRun:
    """Artefacts and manifest of one completed run."""

    artifacts: Dict[str, Any] = field(default_factory=dict)
    manifest: RunManifest = field(default_factory=lambda: RunManifest(1))

    def __getitem__(self, task_id: str) -> Any:
        return self.artifacts[task_id]


def resolve_worker_count(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit > ``REPRO_MAX_WORKERS`` > cpu count."""
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV)
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ReproError(
                    f"{MAX_WORKERS_ENV} must be an integer, got {env!r}")
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ReproError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _execute_in_worker(stage_name: str, payload: Any, deps: Dict[str, Any],
                       observe: bool = False, task_id: str = "",
                       ) -> Tuple[Any, str, float, Optional[Dict]]:
    """Pool-side task execution.

    Returns ``(artifact, worker id, wall time, observed)``; ``observed``
    is the worker tracer's exported span/metric bundle when tracing is
    on (the parent engine merges it into its own tracer, re-rooted
    under the task's span — this is how spans nest across the
    ``ProcessPoolExecutor`` boundary), else ``None``.

    Pipeline stages register at import time, so a spawn-started worker
    needs the defining module imported before lookup; fork-started
    workers inherit the parent's registry.
    """
    try:
        import repro.engine.pipeline  # noqa: F401  (registers stages)
    except ImportError:
        pass
    stage = get_stage(stage_name)
    if not observe:
        start = time.perf_counter()
        artifact = stage.compute(payload, deps)
        return artifact, str(os.getpid()), time.perf_counter() - start, None

    from repro.observe import Tracer
    tracer = Tracer()
    with activate(tracer):
        start = time.perf_counter()
        with tracer.span("engine.compute", task=task_id, stage=stage_name):
            artifact = stage.compute(payload, deps)
        wall = time.perf_counter() - start
    return artifact, str(os.getpid()), wall, tracer.export_records()


class Engine:
    """Content-addressed task-graph runner.

    Parameters
    ----------
    max_workers:
        Pool width; ``None`` auto-detects (``REPRO_MAX_WORKERS`` env var,
        then cpu count).  ``1`` forces deterministic in-process serial
        execution — no pool is created.
    cache:
        Share an existing :class:`ArtifactCache`; by default each engine
        owns one resolved from ``cache_dir`` / ``REPRO_CACHE_DIR``.
    observe:
        Observability control: ``None`` inherits the active tracer
        (``REPRO_TRACE`` env var by default), ``True``/``False`` force
        tracing on/off, a path enables tracing and exports trace files
        there after every run, a :class:`repro.observe.Tracer` records
        into that instance.  Tracing never changes artefacts — only
        what is recorded about producing them.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk: bool = True,
                 observe: Any = None):
        self.max_workers = resolve_worker_count(max_workers)
        self.cache = cache or ArtifactCache(cache_dir=cache_dir,
                                            use_disk=use_disk)
        self.observe = observe
        self.last_manifest: Optional[RunManifest] = None

    def _tracer(self):
        """The tracer this engine's runs record into."""
        return resolve_tracer(self.observe)

    # ------------------------------------------------------------------
    # graph preparation
    # ------------------------------------------------------------------
    @staticmethod
    def _topological_order(tasks: Sequence[Task]) -> List[Task]:
        by_id = {}
        for task in tasks:
            if task.id in by_id:
                raise ReproError(f"duplicate task id {task.id!r}")
            by_id[task.id] = task
        order: List[Task] = []
        state: Dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(task_id: str, chain: Tuple[str, ...]) -> None:
            if state.get(task_id) == 2:
                return
            if state.get(task_id) == 1:
                raise ReproError(
                    f"task graph cycle: {' -> '.join(chain + (task_id,))}")
            if task_id not in by_id:
                raise ReproError(f"unknown dependency {task_id!r}")
            state[task_id] = 1
            for dep in by_id[task_id].deps:
                visit(dep, chain + (task_id,))
            state[task_id] = 2
            order.append(by_id[task_id])

        for task in tasks:
            visit(task.id, ())
        return order

    def task_keys(self, tasks: Sequence[Task]) -> Dict[str, str]:
        """Content-addressed fingerprint of every task in the graph."""
        keys: Dict[str, str] = {}
        for task in self._topological_order(tasks):
            stage = get_stage(task.stage)
            keys[task.id] = combine_fingerprints(
                task.stage, str(stage.version), fingerprint(task.payload),
                *[keys[dep] for dep in task.deps])
        return keys

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> EngineRun:
        """Materialise every task's artefact, cheapest way available."""
        tracer = self._tracer()
        with activate(tracer):
            with tracer.span("engine.run", tasks=len(tasks),
                             max_workers=self.max_workers) as span:
                result = self._run_traced(tasks)
                if tracer.enabled:
                    summary = result.manifest.summary()
                    span.set(cache_hits=summary["cache_hits"],
                             computed=summary["computed"])
                    tracer.counter("engine.tasks").inc(summary["tasks"])
                    tracer.counter("engine.cache_hits").inc(
                        summary["cache_hits"])
                    tracer.counter("engine.computed").inc(
                        summary["computed"])
                    tracer.gauge("engine.cache.hit_rate").set(
                        result.manifest.hit_rate())
        if tracer.enabled and tracer.out_dir is not None:
            tracer.export_all()
        return result

    def _run_traced(self, tasks: Sequence[Task]) -> EngineRun:
        run_start = time.perf_counter()
        order = self._topological_order(tasks)
        keys = self.task_keys(order)
        result = EngineRun(manifest=RunManifest(max_workers=self.max_workers))

        pending: List[Task] = []
        for task in order:
            if not self._try_cache(task, keys[task.id], result):
                pending.append(task)

        if pending:
            if self.max_workers == 1 or len(pending) == 1:
                self._run_serial(pending, keys, result)
            else:
                self._run_parallel(pending, keys, result)

        result.manifest.total_wall_time = time.perf_counter() - run_start
        self.last_manifest = result.manifest
        return result

    @staticmethod
    def _observe_record(record: TaskRecord, **extra: Any) -> None:
        """Fold a manifest record into the trace's event stream."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        tracer.event("engine.task", task=record.task_id, stage=record.stage,
                     cache=record.cache, wall_time=record.wall_time,
                     worker=record.worker, **extra)
        if record.cache_hit:
            tracer.counter(f"engine.cache_hits.{record.cache}").inc()

    def _record_computed(self, task: Task, key: str, artifact: Any,
                         worker: str, wall: float, result: EngineRun,
                         **extra: Any) -> None:
        self.cache.put(key, get_stage(task.stage), artifact)
        result.artifacts[task.id] = artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key, cache="miss",
            wall_time=wall, worker=worker)
        result.manifest.add(record)
        self._observe_record(record, **extra)

    def _dep_artifacts(self, task: Task, result: EngineRun) -> Dict[str, Any]:
        return {dep: result.artifacts[dep] for dep in task.deps}

    def _try_cache(self, task: Task, key: str, result: EngineRun) -> bool:
        """Serve a task from cache if possible (same-key dedup in a run)."""
        stage = get_stage(task.stage)
        start = time.perf_counter()
        artifact, layer = self.cache.get(key, stage)
        if layer is None:
            return False
        result.artifacts[task.id] = artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key, cache=layer,
            wall_time=time.perf_counter() - start, worker="cache")
        result.manifest.add(record)
        self._observe_record(record)
        return True

    def _run_serial(self, pending: Sequence[Task], keys: Dict[str, str],
                    result: EngineRun) -> None:
        tracer = get_tracer()
        for task in pending:
            # an earlier same-key task may have materialised it already
            if self._try_cache(task, keys[task.id], result):
                continue
            stage = get_stage(task.stage)
            start = time.perf_counter()
            with tracer.span("engine.compute", task=task.id,
                             stage=task.stage):
                artifact = stage.compute(task.payload,
                                         self._dep_artifacts(task, result))
            self._record_computed(task, keys[task.id], artifact, "main",
                                  time.perf_counter() - start, result)

    def _run_parallel(self, pending: Sequence[Task], keys: Dict[str, str],
                      result: EngineRun) -> None:
        tracer = get_tracer()
        observing = tracer.enabled
        waiting = {task.id: task for task in pending}
        futures = {}
        submit_times: Dict[str, float] = {}
        inflight_keys = set()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        workers = min(self.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            def submit_ready() -> None:
                # loop to quiescence: a cache-served task can unblock its
                # dependents within the same scheduling round
                progress = True
                while progress:
                    progress = False
                    for task_id in list(waiting):
                        task = waiting[task_id]
                        if not all(dep in result.artifacts
                                   for dep in task.deps):
                            continue
                        key = keys[task_id]
                        if self._try_cache(task, key, result):
                            del waiting[task_id]
                            progress = True
                            continue
                        if key in inflight_keys:
                            # same-key task already computing: wait, then
                            # serve this one from cache
                            continue
                        del waiting[task_id]
                        inflight_keys.add(key)
                        if observing:
                            submit_times[task_id] = time.perf_counter()
                            tracer.event("engine.task.submit", task=task_id,
                                         stage=task.stage)
                        futures[pool.submit(
                            _execute_in_worker, task.stage, task.payload,
                            self._dep_artifacts(task, result),
                            observing, task_id)] = task

            submit_ready()
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures.pop(future)
                    artifact, worker, wall, observed = future.result()
                    inflight_keys.discard(keys[task.id])
                    extra = {}
                    if observing:
                        # Queue latency: time the finished task spent
                        # waiting for a pool slot plus serialisation,
                        # i.e. everything between submit and compute.
                        elapsed = (time.perf_counter()
                                   - submit_times.pop(task.id))
                        queue_s = max(elapsed - wall, 0.0)
                        extra["queue_s"] = queue_s
                        tracer.histogram("engine.queue_latency_s",
                                         TIME_BUCKETS).observe(queue_s)
                        if observed is not None:
                            tracer.merge_records(observed)
                    self._record_computed(task, keys[task.id], artifact,
                                          worker, wall, result, **extra)
                submit_ready()


# ----------------------------------------------------------------------
# the process-wide default engine (what the thin shims route through)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The lazily created process-wide engine the API shims share."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Swap the default engine (returns the previous one)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


def reset_default_engine() -> None:
    """Drop the default engine (a fresh one resolves env vars anew)."""
    set_default_engine(None)
