"""The task-graph executor.

``Engine.run`` takes a list of :class:`Task` descriptions, fingerprints
them (stage version + payload + dependency fingerprints, so content
addressing composes through the graph), serves whatever it can from the
:class:`~repro.engine.cache.ArtifactCache`, and computes the rest —
serially in deterministic topological order when ``max_workers == 1``,
otherwise fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` with dependency-aware scheduling: a task is
submitted the moment its last dependency materialises, so extraction
tasks feed PPA tasks as they complete rather than behind a barrier.

Serial and parallel runs execute the same pure stage functions on the
same inputs, so their artefacts are bit-identical; the only difference
a manifest can show is wall time and worker ids.

Failure domain (see :mod:`repro.resilience`): every task gets the
engine's :class:`~repro.resilience.retry.RetryPolicy` — capped
exponential backoff between attempts (``REPRO_TASK_RETRIES``) and an
optional wall-time budget per task (``REPRO_TASK_TIMEOUT``, enforced by
the parallel executor, which can kill and rebuild the pool).  A
``BrokenProcessPool`` (worker SIGKILLed, OOMed...) rebuilds the pool
and resubmits the lost in-flight tasks.  With ``on_error="continue"``
a task that exhausts its attempts is recorded as a
:class:`~repro.engine.manifest.TaskFailure`, its dependents are marked
``skipped``, and every independent subgraph still runs to completion —
because the cache is content-addressed, re-running the same graph then
recomputes *only* the failed/skipped tasks.

Durability (see :mod:`repro.engine.durability`): ``run`` optionally
journals every task outcome to an append-only fsync'd
:class:`~repro.engine.durability.RunJournal` (crash-safe resume), pins
the graph's artefact keys against cache eviction for the duration of
the run, honours a
:class:`~repro.engine.durability.CancellationToken` at task boundaries
(graceful shutdown: stop scheduling, drain in-flight work within the
grace window, raise :class:`~repro.errors.RunInterrupted` with the
partial manifest), and — when several invocations share one cache
directory — routes cache misses through the cache's cross-process
single-flight protocol so the same fingerprint is not computed N
times.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import ArtifactCache
from repro.engine.durability import CancellationToken, RunJournal
from repro.engine.fingerprint import combine_fingerprints, fingerprint
from repro.engine.manifest import (
    RunManifest,
    STATUS_INTERRUPTED,
    TaskFailure,
    TaskRecord,
)
from repro.engine.stages import get_stage
from repro.errors import (
    EngineRunError,
    InjectedFault,
    ReproError,
    RunInterrupted,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.observe import TIME_BUCKETS, activate, get_tracer, resolve_tracer
from repro.resilience.faults import draw_fault, kill_current_process
from repro.resilience.retry import RetryPolicy, resolve_retry_policy

#: Environment variable overriding the auto-detected worker count.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Characters of formatted traceback kept in a TaskFailure record.
TRACEBACK_TAIL = 1500

#: Valid ``on_error`` modes.
ON_ERROR_MODES = ("raise", "continue")


@dataclass(frozen=True)
class Task:
    """One node of a task graph.

    ``payload`` must be JSON-canonical data (see
    :func:`repro.engine.fingerprint.canonicalize`) carrying everything
    the stage's compute function needs besides dependency artefacts;
    ``deps`` names the tasks whose artefacts it consumes.
    """

    id: str
    stage: str
    payload: Any = None
    deps: Tuple[str, ...] = ()


@dataclass
class EngineRun:
    """Artefacts and manifest of one completed run.

    After an ``on_error="continue"`` run, :attr:`failed` and
    :attr:`skipped` map task ids to their
    :class:`~repro.engine.manifest.TaskFailure` records and
    :attr:`error` aggregates them into an
    :class:`~repro.errors.EngineRunError` (``None`` when all succeeded).
    """

    artifacts: Dict[str, Any] = field(default_factory=dict)
    manifest: RunManifest = field(default_factory=lambda: RunManifest(1))

    def __getitem__(self, task_id: str) -> Any:
        return self.artifacts[task_id]

    @property
    def failed(self) -> Dict[str, TaskFailure]:
        """Tasks whose compute failed after every attempt."""
        return {f.task_id: f for f in self.manifest.failed()}

    @property
    def skipped(self) -> Dict[str, TaskFailure]:
        """Tasks skipped because a dependency failed."""
        return {f.task_id: f for f in self.manifest.skipped()}

    @property
    def ok(self) -> bool:
        """True when every task produced an artefact."""
        return not self.manifest.failures

    @property
    def error(self) -> Optional[EngineRunError]:
        """Aggregated failure report, or ``None`` for a clean run."""
        if self.ok:
            return None
        return EngineRunError(
            f"{len(self.manifest.failed())} task(s) failed, "
            f"{len(self.manifest.skipped())} skipped",
            failures=self.manifest.failures)

    def raise_for_failures(self) -> None:
        """Raise :attr:`error` when the run had failures."""
        error = self.error
        if error is not None:
            raise error


def resolve_worker_count(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit > ``REPRO_MAX_WORKERS`` > cpu count."""
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV)
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ReproError(
                    f"{MAX_WORKERS_ENV} must be an integer, "
                    f"got {env!r}") from None
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ReproError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _traceback_tail(exc: BaseException) -> str:
    """Last ``TRACEBACK_TAIL`` characters of the formatted traceback."""
    try:
        text = "".join(traceback_module.format_exception(
            type(exc), exc, exc.__traceback__))
    except Exception:  # pragma: no cover - formatting never critical
        text = repr(exc)
    return text[-TRACEBACK_TAIL:]


def _execute_in_worker(stage_name: str, payload: Any, deps: Dict[str, Any],
                       observe: bool = False, task_id: str = "",
                       fault: Optional[str] = None,
                       ) -> Tuple[Any, str, float, Optional[Dict]]:
    """Pool-side task execution.

    Returns ``(artifact, worker id, wall time, observed)``; ``observed``
    is the worker tracer's exported span/metric bundle when tracing is
    on (the parent engine merges it into its own tracer, re-rooted
    under the task's span — this is how spans nest across the
    ``ProcessPoolExecutor`` boundary), else ``None``.

    ``fault`` is an injection directive drawn by the *parent* engine
    (deterministically) at submit time: ``"kill"`` SIGKILLs this worker
    before computing, ``"exc:<message>"`` raises an
    :class:`InjectedFault` in place of the stage compute.

    Pipeline stages register at import time, so a spawn-started worker
    needs the defining module imported before lookup; fork-started
    workers inherit the parent's registry.
    """
    if fault == "kill":  # pragma: no cover - kills this process
        kill_current_process()
    try:
        import repro.engine.pipeline  # noqa: F401  (registers stages)
    except ImportError:
        pass
    stage = get_stage(stage_name)
    if not observe:
        start = time.perf_counter()
        if fault is not None and fault.startswith("exc:"):
            raise InjectedFault(fault[4:])
        artifact = stage.compute(payload, deps)
        return artifact, str(os.getpid()), time.perf_counter() - start, None

    from repro.observe import Tracer
    tracer = Tracer()
    with activate(tracer):
        start = time.perf_counter()
        with tracer.span("engine.compute", task=task_id, stage=stage_name):
            if fault is not None and fault.startswith("exc:"):
                raise InjectedFault(fault[4:])
            artifact = stage.compute(payload, deps)
        wall = time.perf_counter() - start
    return artifact, str(os.getpid()), wall, tracer.export_records()


class Engine:
    """Content-addressed task-graph runner.

    Parameters
    ----------
    max_workers:
        Pool width; ``None`` auto-detects (``REPRO_MAX_WORKERS`` env var,
        then cpu count).  ``1`` forces deterministic in-process serial
        execution — no pool is created.
    cache:
        Share an existing :class:`ArtifactCache`; by default each engine
        owns one resolved from ``cache_dir`` / ``REPRO_CACHE_DIR``.
    observe:
        Observability control: ``None`` inherits the active tracer
        (``REPRO_TRACE`` env var by default), ``True``/``False`` force
        tracing on/off, a path enables tracing and exports trace files
        there after every run, a :class:`repro.observe.Tracer` records
        into that instance.  Tracing never changes artefacts — only
        what is recorded about producing them.
    retry_policy:
        Per-task :class:`~repro.resilience.retry.RetryPolicy`; ``None``
        resolves from ``REPRO_TASK_RETRIES`` / ``REPRO_TASK_TIMEOUT``.
    on_error:
        Default failure mode of :meth:`run`: ``"raise"`` re-raises the
        first task error after its retries are exhausted (pre-1.3
        behaviour), ``"continue"`` records failures in the manifest,
        skips dependents and completes every independent subgraph.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk: bool = True,
                 observe: Any = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 on_error: str = "raise"):
        if on_error not in ON_ERROR_MODES:
            raise ReproError(f"on_error must be one of {ON_ERROR_MODES}, "
                             f"got {on_error!r}")
        self.max_workers = resolve_worker_count(max_workers)
        self.cache = cache or ArtifactCache(cache_dir=cache_dir,
                                            use_disk=use_disk)
        self.observe = observe
        self.retry_policy = resolve_retry_policy(retry_policy)
        self.on_error = on_error
        self.last_manifest: Optional[RunManifest] = None
        self._journal: Optional[RunJournal] = None
        self._cancellation: Optional[CancellationToken] = None

    def _tracer(self):
        """The tracer this engine's runs record into."""
        return resolve_tracer(self.observe)

    # ------------------------------------------------------------------
    # graph preparation
    # ------------------------------------------------------------------
    @staticmethod
    def _topological_order(tasks: Sequence[Task]) -> List[Task]:
        by_id = {}
        for task in tasks:
            if task.id in by_id:
                raise ReproError(f"duplicate task id {task.id!r}")
            by_id[task.id] = task
        order: List[Task] = []
        state: Dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(task_id: str, chain: Tuple[str, ...]) -> None:
            if state.get(task_id) == 2:
                return
            if state.get(task_id) == 1:
                raise ReproError(
                    f"task graph cycle: {' -> '.join(chain + (task_id,))}")
            if task_id not in by_id:
                raise ReproError(f"unknown dependency {task_id!r}")
            state[task_id] = 1
            for dep in by_id[task_id].deps:
                visit(dep, chain + (task_id,))
            state[task_id] = 2
            order.append(by_id[task_id])

        for task in tasks:
            visit(task.id, ())
        return order

    def task_keys(self, tasks: Sequence[Task]) -> Dict[str, str]:
        """Content-addressed fingerprint of every task in the graph."""
        keys: Dict[str, str] = {}
        for task in self._topological_order(tasks):
            stage = get_stage(task.stage)
            keys[task.id] = combine_fingerprints(
                task.stage, str(stage.version), fingerprint(task.payload),
                *[keys[dep] for dep in task.deps])
        return keys

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task],
            on_error: Optional[str] = None, *,
            journal: Optional[RunJournal] = None,
            cancellation: Optional[CancellationToken] = None) -> EngineRun:
        """Materialise every task's artefact, cheapest way available.

        ``on_error`` overrides the engine default for this run (see the
        constructor).  With ``"continue"``, inspect the returned run's
        :attr:`EngineRun.failed` / :attr:`EngineRun.skipped` /
        :attr:`EngineRun.error` for what (if anything) degraded.

        ``journal`` makes the run durable: every task outcome is
        appended (fsync'd) as it happens, so a killed process can be
        resumed from the journal plus the content-addressed cache.
        ``cancellation`` is polled at task boundaries; once set the
        engine stops scheduling, drains in-flight tasks within the
        token's grace window and raises
        :class:`~repro.errors.RunInterrupted` carrying the partial
        manifest (``status == "interrupted"``).
        """
        if on_error is None:
            on_error = self.on_error
        if on_error not in ON_ERROR_MODES:
            raise ReproError(f"on_error must be one of {ON_ERROR_MODES}, "
                             f"got {on_error!r}")
        tracer = self._tracer()
        with activate(tracer):
            with tracer.span("engine.run", tasks=len(tasks),
                             max_workers=self.max_workers) as span:
                result = self._run_traced(tasks, on_error,
                                          journal=journal,
                                          cancellation=cancellation)
                if tracer.enabled:
                    summary = result.manifest.summary()
                    span.set(cache_hits=summary["cache_hits"],
                             computed=summary["computed"],
                             failed=summary["failed"],
                             skipped=summary["skipped"])
                    tracer.counter("engine.tasks").inc(summary["tasks"])
                    tracer.counter("engine.cache_hits").inc(
                        summary["cache_hits"])
                    tracer.counter("engine.computed").inc(
                        summary["computed"])
                    tracer.gauge("engine.cache.hit_rate").set(
                        result.manifest.hit_rate())
        if tracer.enabled and tracer.out_dir is not None:
            tracer.export_all()
        return result

    def _run_traced(self, tasks: Sequence[Task], on_error: str,
                    journal: Optional[RunJournal] = None,
                    cancellation: Optional[CancellationToken] = None,
                    ) -> EngineRun:
        run_start = time.perf_counter()
        order = self._topological_order(tasks)
        keys = self.task_keys(order)
        result = EngineRun(manifest=RunManifest(max_workers=self.max_workers))
        self.last_manifest = result.manifest
        self._journal = journal
        self._cancellation = cancellation
        pinned = set(keys.values())
        self.cache.pin(pinned)

        try:
            pending: List[Task] = []
            for task in order:
                if not self._try_cache(task, keys[task.id], result):
                    pending.append(task)

            self._check_cancelled(result)
            if pending:
                if self.max_workers == 1 or len(pending) == 1:
                    self._run_serial(pending, keys, result, on_error)
                else:
                    self._run_parallel(pending, keys, result, on_error)
        finally:
            self.cache.unpin(pinned)
            self._journal = None
            self._cancellation = None
            result.manifest.total_wall_time = time.perf_counter() - run_start
        return result

    # ------------------------------------------------------------------
    # durability hooks
    # ------------------------------------------------------------------
    def _journal_task(self, record: Dict[str, Any]) -> None:
        journal = getattr(self, "_journal", None)
        if journal is not None:
            journal.append(record)

    def _cancelled(self) -> bool:
        cancellation = getattr(self, "_cancellation", None)
        return cancellation is not None and cancellation.is_set()

    def _check_cancelled(self, result: EngineRun) -> None:
        """Raise :class:`RunInterrupted` when the token is set."""
        if not self._cancelled():
            return
        self._interrupt(result)

    def _interrupt(self, result: EngineRun) -> None:
        cancellation = self._cancellation
        result.manifest.status = STATUS_INTERRUPTED
        reason = cancellation.reason if cancellation else "cancelled"
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.run.interrupted").inc()
            tracer.event("engine.run.interrupted", reason=reason,
                         done=len(result.artifacts))
        raise RunInterrupted(
            f"run interrupted by {reason} after "
            f"{len(result.artifacts)} task(s); resume recomputes only "
            f"what the journal and cache did not preserve",
            manifest=result.manifest,
            run_id=result.manifest.run_id)

    # ------------------------------------------------------------------
    # bookkeeping shared by the serial and parallel paths
    # ------------------------------------------------------------------
    @staticmethod
    def _observe_record(record: TaskRecord, **extra: Any) -> None:
        """Fold a manifest record into the trace's event stream."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        tracer.event("engine.task", task=record.task_id, stage=record.stage,
                     cache=record.cache, wall_time=record.wall_time,
                     worker=record.worker, **extra)
        if record.cache_hit:
            tracer.counter(f"engine.cache_hits.{record.cache}").inc()

    def _record_computed(self, task: Task, key: str, artifact: Any,
                         worker: str, wall: float, result: EngineRun,
                         attempts: int = 1, **extra: Any) -> None:
        self.cache.put(key, get_stage(task.stage), artifact)
        result.artifacts[task.id] = artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key, cache="miss",
            wall_time=wall, worker=worker, attempts=attempts)
        result.manifest.add(record)
        self._observe_record(record, **extra)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "done",
                            "cache": "miss"})
        # Chaos hook: die at this task boundary — the artefact is
        # published and journalled, so a resume trusts it and loses at
        # most the tasks that were in flight.
        if draw_fault("proc_kill", task.stage) is not None:
            kill_current_process()  # pragma: no cover - kills process

    def _record_failure(self, task: Task, key: str, exc: BaseException,
                        attempts: int, result: EngineRun) -> TaskFailure:
        failure = TaskFailure(
            task_id=task.id, stage=task.stage, key=key, status="failed",
            error_type=type(exc).__name__, message=str(exc),
            attempts=attempts, traceback=_traceback_tail(exc))
        result.manifest.add_failure(failure)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.task.failed").inc()
            tracer.event("engine.task.failed", task=task.id,
                         stage=task.stage, error=type(exc).__name__,
                         message=str(exc), attempts=attempts)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "failed",
                            "error": type(exc).__name__})
        return failure

    def _record_skip(self, task: Task, key: str, upstream: str,
                     result: EngineRun) -> TaskFailure:
        failure = TaskFailure(
            task_id=task.id, stage=task.stage, key=key, status="skipped",
            upstream=upstream)
        result.manifest.add_failure(failure)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.task.skipped").inc()
            tracer.event("engine.task.skipped", task=task.id,
                         stage=task.stage, upstream=upstream)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "skipped",
                            "upstream": upstream})
        return failure

    @staticmethod
    def _note_retry(task: Task, attempt: int, exc: BaseException,
                    delay: float) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.task.retry").inc()
            tracer.event("engine.task.retry", task=task.id,
                         stage=task.stage, attempt=attempt,
                         error=type(exc).__name__, delay_s=delay)

    def _dep_artifacts(self, task: Task, result: EngineRun) -> Dict[str, Any]:
        return {dep: result.artifacts[dep] for dep in task.deps}

    def _try_cache(self, task: Task, key: str, result: EngineRun) -> bool:
        """Serve a task from cache if possible (same-key dedup in a run)."""
        stage = get_stage(task.stage)
        start = time.perf_counter()
        artifact, layer = self.cache.get(key, stage)
        if layer is None:
            return False
        result.artifacts[task.id] = artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key, cache=layer,
            wall_time=time.perf_counter() - start, worker="cache")
        result.manifest.add(record)
        self._observe_record(record)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "done",
                            "cache": layer})
        return True

    # ------------------------------------------------------------------
    # serial execution
    # ------------------------------------------------------------------
    def _run_serial(self, pending: Sequence[Task], keys: Dict[str, str],
                    result: EngineRun, on_error: str) -> None:
        tracer = get_tracer()
        policy = self.retry_policy
        unresolved: Dict[str, TaskFailure] = {}
        for task in pending:
            self._check_cancelled(result)
            # an earlier same-key task may have materialised it already
            if self._try_cache(task, keys[task.id], result):
                continue
            bad_dep = next((d for d in task.deps if d in unresolved), None)
            if bad_dep is not None:
                unresolved[task.id] = self._record_skip(
                    task, keys[task.id], bad_dep, result)
                continue
            stage = get_stage(task.stage)
            # Cross-process single flight: if another invocation is
            # computing this exact fingerprint, wait for its publish
            # instead of duplicating the work (bounded by the lock
            # timeout — then we compute anyway).
            flight = None
            if stage.persistent:
                flight = self.cache.begin_flight(keys[task.id])
                if flight is None:
                    outcome = self.cache.flight_wait(keys[task.id],
                                                     task.stage)
                    if (outcome == "ready"
                            and self._try_cache(task, keys[task.id],
                                                result)):
                        continue
                    flight = self.cache.begin_flight(keys[task.id])
            deps = self._dep_artifacts(task, result)
            attempt = 0
            try:
                while True:
                    attempt += 1
                    start = time.perf_counter()
                    try:
                        rule = draw_fault("stage_exc", task.stage)
                        with tracer.span("engine.compute", task=task.id,
                                         stage=task.stage):
                            if rule is not None:
                                raise InjectedFault(
                                    rule.message
                                    or f"injected stage_exc at "
                                       f"{task.stage}")
                            artifact = stage.compute(task.payload, deps)
                    except Exception as exc:
                        if attempt < policy.attempts:
                            delay = policy.delay(attempt)
                            self._note_retry(task, attempt, exc, delay)
                            if delay > 0:
                                time.sleep(delay)
                            continue
                        unresolved[task.id] = self._record_failure(
                            task, keys[task.id], exc, attempt, result)
                        if on_error == "raise":
                            raise
                        break
                    self._record_computed(task, keys[task.id], artifact,
                                          "main",
                                          time.perf_counter() - start,
                                          result, attempts=attempt)
                    break
            finally:
                self.cache.end_flight(flight)

    # ------------------------------------------------------------------
    # parallel execution
    # ------------------------------------------------------------------
    def _run_parallel(self, pending: Sequence[Task], keys: Dict[str, str],
                      result: EngineRun, on_error: str) -> None:
        tracer = get_tracer()
        observing = tracer.enabled
        policy = self.retry_policy
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        workers = min(self.max_workers, len(pending))

        waiting = {task.id: task for task in pending}
        futures: Dict[Any, Task] = {}
        deadlines: Dict[Any, float] = {}
        deferred: List[Tuple[float, Task]] = []   # backoff timers
        attempts: Dict[str, int] = {}
        crashes: Dict[str, int] = {}
        submit_times: Dict[str, float] = {}
        inflight_keys = set()
        unresolved: Dict[str, TaskFailure] = {}
        lost_submits: List[Task] = []
        pool_broken = False
        #: Cross-process single-flight claims held for in-flight keys.
        flights: Dict[str, Any] = {}
        #: Tasks parked behind another *process's* flight, with the
        #: stampede-fallback deadline after which we compute anyway.
        flight_blocked: Dict[str, float] = {}

        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

        def release_flight(key: str) -> None:
            flight = flights.pop(key, None)
            if flight is not None:
                self.cache.end_flight(flight)

        def fail_task(task: Task, exc: BaseException,
                      n_attempts: int) -> BaseException:
            """Record a final failure; fail same-key duplicates too.

            A task parked behind an in-flight duplicate key must fail
            when that computation fails — identical content implies an
            identical outcome, and leaving it parked would deadlock
            the run (the key never materialises).
            """
            key = keys[task.id]
            unresolved[task.id] = self._record_failure(
                task, key, exc, n_attempts, result)
            inflight_keys.discard(key)
            release_flight(key)
            for dup_id in [t for t in waiting if keys[t] == key]:
                dup = waiting.pop(dup_id)
                flight_blocked.pop(dup_id, None)
                unresolved[dup_id] = self._record_failure(
                    dup, key, exc, 0, result)
            return exc

        def submit(task: Task, attempt: int) -> None:
            nonlocal pool_broken
            fault = None
            rule = draw_fault("worker_kill", task.stage)
            if rule is not None:
                fault = "kill"
            else:
                rule = draw_fault("stage_exc", task.stage)
                if rule is not None:
                    fault = "exc:" + (rule.message or
                                      f"injected stage_exc at {task.stage}")
            if observing:
                submit_times[task.id] = time.perf_counter()
                tracer.event("engine.task.submit", task=task.id,
                             stage=task.stage, attempt=attempt)
            try:
                future = pool.submit(
                    _execute_in_worker, task.stage, task.payload,
                    self._dep_artifacts(task, result), observing, task.id,
                    fault)
            except (BrokenProcessPool, RuntimeError):
                # Pool already broken (or shutting down): queue the task
                # for the rebuild pass instead of losing it.
                pool_broken = True
                lost_submits.append(task)
                return
            futures[future] = task
            if policy.timeout is not None:
                deadlines[future] = time.monotonic() + policy.timeout

        def submit_ready() -> None:
            # loop to quiescence: a cache-served task can unblock its
            # dependents within the same scheduling round
            progress = True
            while progress:
                progress = False
                now = time.monotonic()
                for entry in list(deferred):
                    ready_at, task = entry
                    if now >= ready_at:
                        deferred.remove(entry)
                        attempts[task.id] += 1
                        submit(task, attempts[task.id])
                        progress = True
                for task_id in list(waiting):
                    task = waiting[task_id]
                    key = keys[task_id]
                    if self._try_cache(task, key, result):
                        del waiting[task_id]
                        flight_blocked.pop(task_id, None)
                        progress = True
                        continue
                    bad_dep = next((d for d in task.deps
                                    if d in unresolved), None)
                    if bad_dep is not None:
                        del waiting[task_id]
                        flight_blocked.pop(task_id, None)
                        unresolved[task_id] = self._record_skip(
                            task, key, bad_dep, result)
                        progress = True
                        continue
                    if not all(dep in result.artifacts
                               for dep in task.deps):
                        continue
                    if key in inflight_keys:
                        # same-key task already computing: it resolves
                        # here (from cache) on success, or through
                        # fail_task on failure — never parked forever
                        continue
                    if (get_stage(task.stage).persistent
                            and key not in flights):
                        flight = self.cache.begin_flight(key)
                        if flight is None:
                            # Another *process* is computing this key:
                            # stay parked (each round re-checks the
                            # cache above) until its publish lands or
                            # the stampede-fallback deadline passes.
                            deadline = flight_blocked.setdefault(
                                task_id, time.monotonic()
                                + self.cache.lock_timeout)
                            if time.monotonic() < deadline:
                                continue
                        else:
                            flights[key] = flight
                    flight_blocked.pop(task_id, None)
                    del waiting[task_id]
                    inflight_keys.add(key)
                    attempts[task_id] = 1
                    submit(task, 1)
                    progress = True

        def rebuild_pool(lost: List[Tuple[Task, bool]],
                         reason: str) -> None:
            """Replace the dead pool; retry/fail the lost tasks.

            ``lost`` holds ``(task, overdue)`` pairs; overdue tasks
            (timeout kills) burn a retry attempt, collateral ones are
            resubmitted for free (their crash budget still bounds the
            worst case of a task that keeps killing its worker).
            """
            nonlocal pool
            result.manifest.pool_rebuilds += 1
            if observing:
                tracer.counter("engine.pool.rebuilt").inc()
                tracer.event("engine.pool.rebuilt", reason=reason,
                             lost=len(lost))
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=context)
            for task, overdue in lost:
                n = attempts.get(task.id, 1)
                if overdue:
                    exc: BaseException = TaskTimeoutError(
                        f"task {task.id} exceeded its "
                        f"{policy.timeout:g}s budget")
                    if n < policy.attempts:
                        delay = policy.delay(n)
                        self._note_retry(task, n, exc, delay)
                        deferred.append((time.monotonic() + delay, task))
                    else:
                        raise_or_continue(fail_task(task, exc, n))
                    continue
                crashes[task.id] = crashes.get(task.id, 0) + 1
                if crashes[task.id] > policy.retries + 1:
                    exc = WorkerCrashError(
                        f"worker died {crashes[task.id]} times while "
                        f"computing {task.id}")
                    raise_or_continue(fail_task(task, exc, n))
                else:
                    if observing:
                        tracer.event("engine.task.resubmit", task=task.id,
                                     stage=task.stage, reason=reason)
                    submit(task, n)

        raised: List[BaseException] = []

        def raise_or_continue(exc: BaseException) -> None:
            if on_error == "raise":
                raised.append(exc)

        def kill_pool_processes() -> None:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already dead
                    pass

        def record_success(task: Task, payload: Tuple) -> None:
            artifact, worker, wall, observed = payload
            inflight_keys.discard(keys[task.id])
            finish_flight = keys[task.id]
            extra = {}
            if observing:
                # Queue latency: time the finished task spent waiting
                # for a pool slot plus serialisation, i.e. everything
                # between submit and compute.
                elapsed = time.perf_counter() - submit_times.pop(task.id)
                queue_s = max(elapsed - wall, 0.0)
                extra["queue_s"] = queue_s
                tracer.histogram("engine.queue_latency_s",
                                 TIME_BUCKETS).observe(queue_s)
                if observed is not None:
                    tracer.merge_records(observed)
            self._record_computed(task, keys[task.id], artifact, worker,
                                  wall, result,
                                  attempts=attempts.get(task.id, 1),
                                  **extra)
            # The artefact is published: let waiting peers read it.
            release_flight(finish_flight)

        def drain_and_interrupt() -> None:
            """Graceful shutdown: drain in-flight work, then stop.

            No new submissions happen after this point; pending
            backoff retries are dropped; in-flight futures get the
            grace window to land (their results are recorded and
            journalled), then the pool is killed.
            """
            deferred.clear()
            grace = (self._cancellation.grace
                     if self._cancellation is not None else 0.0)
            deadline = time.monotonic() + grace
            while futures and time.monotonic() < deadline:
                done, _ = wait(futures,
                               timeout=max(0.0, min(
                                   0.1, deadline - time.monotonic())),
                               return_when=FIRST_COMPLETED)
                for future in sorted(done, key=lambda f: futures[f].id):
                    task = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        payload = future.result()
                    except Exception:
                        if observing:
                            submit_times.pop(task.id, None)
                        continue
                    record_success(task, payload)
            if futures:
                kill_pool_processes()
            self._interrupt(result)

        try:
            submit_ready()
            while ((futures or deferred or lost_submits or flight_blocked)
                   and not raised):
                if self._cancelled():
                    drain_and_interrupt()
                if pool_broken:
                    pool_broken = False
                    lost = [(task, False) for task in lost_submits]
                    lost_submits.clear()
                    for future, task in list(futures.items()):
                        # Futures that completed before the pool died
                        # still hold valid results — harvest instead of
                        # recomputing.
                        payload = None
                        if future.done():
                            try:
                                payload = future.result()
                            except Exception:
                                payload = None
                        if payload is not None:
                            record_success(task, payload)
                        else:
                            if observing:
                                submit_times.pop(task.id, None)
                            lost.append((task, False))
                    futures.clear()
                    deadlines.clear()
                    rebuild_pool(lost, reason="broken_pool")
                    submit_ready()
                    continue
                if not futures:
                    if not deferred and not flight_blocked:
                        break
                    now = time.monotonic()
                    sleep_for = 0.0
                    if deferred:
                        earliest = min(ready for ready, _ in deferred)
                        sleep_for = max(sleep_for, earliest - now)
                    if flight_blocked:
                        # Poll: the other process's publish lands in the
                        # cache, not in our futures, so wake regularly.
                        sleep_for = min(sleep_for, 0.05) if sleep_for \
                            else 0.05
                    if sleep_for > 0:
                        time.sleep(sleep_for)
                    submit_ready()
                    continue
                timeout = None
                now = time.monotonic()
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - now)
                if deferred:
                    wake = max(0.0, min(r for r, _ in deferred) - now)
                    timeout = wake if timeout is None else min(timeout, wake)
                if flight_blocked:
                    timeout = 0.05 if timeout is None else min(timeout, 0.05)
                done, _ = wait(futures, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                for future in sorted(done, key=lambda f: futures[f].id):
                    task = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # The whole pool is dead; this task (and every
                        # other in-flight one) is lost — rebuild once.
                        pool_broken = True
                        lost_submits.append(task)
                        if observing:
                            submit_times.pop(task.id, None)
                        continue
                    except Exception as exc:
                        n = attempts.get(task.id, 1)
                        if observing:
                            submit_times.pop(task.id, None)
                        if n < policy.attempts:
                            delay = policy.delay(n)
                            self._note_retry(task, n, exc, delay)
                            deferred.append(
                                (time.monotonic() + delay, task))
                        else:
                            raise_or_continue(fail_task(task, exc, n))
                        continue
                    record_success(task, payload)
                if pool_broken or raised:
                    continue
                if deadlines:
                    now = time.monotonic()
                    overdue = {futures[f].id for f, deadline
                               in deadlines.items()
                               if deadline <= now and not f.done()}
                    if overdue:
                        if observing:
                            for task_id in sorted(overdue):
                                tracer.counter("engine.task.timeout").inc()
                                tracer.event("engine.task.timeout",
                                             task=task_id)
                        # A stuck worker cannot be preempted politely:
                        # kill the pool, rebuild, resubmit the
                        # collateral in-flight tasks.
                        kill_pool_processes()
                        lost = [(task, task.id in overdue)
                                for task in futures.values()]
                        futures.clear()
                        deadlines.clear()
                        rebuild_pool(lost, reason="timeout")
                submit_ready()
            if raised:
                raise raised[0]
            if waiting:
                # Structural safety net: any task still parked here is a
                # scheduler bug — fail loudly rather than deadlock.
                raise ReproError(
                    f"executor stalled with {len(waiting)} unresolved "
                    f"task(s): {sorted(waiting)}")
        finally:
            for key in list(flights):
                release_flight(key)
            pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# the process-wide default engine (what the thin shims route through)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The lazily created process-wide engine the API shims share."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Swap the default engine (returns the previous one)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


def reset_default_engine() -> None:
    """Drop the default engine (a fresh one resolves env vars anew)."""
    set_default_engine(None)
