"""The stage registry: named, versioned artefact producers.

A :class:`StageDef` bundles everything the engine needs to compute,
cache and restore one kind of artefact:

* ``compute(payload, deps)`` — the pure function.  ``payload`` is the
  task's JSON-canonical input record; ``deps`` maps dependency task ids
  to their (already materialised) artefacts.
* ``encode`` / ``decode`` — the JSON codec for the on-disk store.  A
  stage without a codec still caches in memory but is never persisted.
* ``version`` — bump whenever the compute function (or any physics it
  calls into) changes behaviour, so stale on-disk artefacts from older
  code can never be mistaken for current ones.

Stages register at import time; worker processes re-register them by
importing the defining module (see ``backends.pool._pool_worker_main``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ReproError

ComputeFn = Callable[[Any, Dict[str, Any]], Any]
EncodeFn = Callable[[Any], Any]
DecodeFn = Callable[[Any], Any]


@dataclass(frozen=True)
class StageDef:
    """One registered artefact producer."""

    name: str
    version: int
    compute: ComputeFn
    encode: Optional[EncodeFn] = None
    decode: Optional[DecodeFn] = None

    @property
    def persistent(self) -> bool:
        """True when the stage can round-trip artefacts through JSON."""
        return self.encode is not None and self.decode is not None


_REGISTRY: Dict[str, StageDef] = {}


def register_stage(name: str, version: int, compute: ComputeFn,
                   encode: Optional[EncodeFn] = None,
                   decode: Optional[DecodeFn] = None,
                   replace: bool = False) -> StageDef:
    """Register a stage definition under ``name``.

    Re-registering an identical name is an error unless ``replace`` is
    set (used by tests that stub stages out).
    """
    if (encode is None) != (decode is None):
        raise ReproError(f"stage {name!r} must define both encode and decode "
                         f"or neither")
    if name in _REGISTRY and not replace:
        raise ReproError(f"stage {name!r} already registered")
    stage = StageDef(name=name, version=version, compute=compute,
                     encode=encode, decode=decode)
    _REGISTRY[name] = stage
    return stage


def unregister_stage(name: str) -> None:
    """Remove a stage (test helper); unknown names are ignored."""
    _REGISTRY.pop(name, None)


def get_stage(name: str) -> StageDef:
    """Look a stage up, raising on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(f"unknown engine stage {name!r}; is its defining "
                         f"module imported?") from None


def registered_stages() -> Tuple[str, ...]:
    """Names of all currently registered stages (sorted)."""
    return tuple(sorted(_REGISTRY))
