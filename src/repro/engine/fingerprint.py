"""Stable content fingerprints for task payloads.

A fingerprint must be identical across processes and Python sessions for
identical inputs, and different whenever any input that can change an
artefact changes.  We get that by canonicalising the value into plain
JSON types (dataclasses flattened with their class name, enums by class
and member name, numpy arrays/scalars as float lists, dict keys sorted)
and hashing the compact JSON encoding.

Floats are serialised through ``repr`` (what :mod:`json` does), which
round-trips every finite IEEE-754 double exactly — two processes that
differ in the 17th digit fingerprint differently, as they must.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from typing import Any

import numpy as np

from repro.errors import ReproError


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable canonical form.

    Supported: None, bool, int, float, str, enums, numpy arrays and
    scalars, dataclass instances, and (possibly nested) dict / list /
    tuple / set containers.  Anything else raises :class:`ReproError`
    rather than silently fingerprinting an unstable ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, np.ndarray):
        return [canonicalize(float(x)) for x in value.ravel().tolist()]
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__name__, **body}
    if isinstance(value, dict):
        out = {}
        for key in sorted(value, key=str):
            if not isinstance(key, (str, int, bool)) and key is not None:
                raise ReproError(
                    f"unfingerprintable dict key of type {type(key).__name__}")
            out[str(key)] = canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(item) for item in value), key=repr)
    raise ReproError(
        f"cannot fingerprint value of type {type(value).__name__!r}; "
        f"payloads must reduce to JSON-canonical data")


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``value``."""
    encoded = json.dumps(canonicalize(value), sort_keys=True,
                         separators=(",", ":"), allow_nan=True)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def combine_fingerprints(*parts: str) -> str:
    """Hash an ordered sequence of fingerprints/strings into one digest."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()
