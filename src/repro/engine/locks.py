"""Advisory cross-process file locks for the shared disk cache.

N concurrent CLI invocations may share one ``REPRO_CACHE_DIR``; the
cache guards its mutating paths (entry publish, eviction, quarantine
maintenance) and its single-flight protocol with advisory locks on
small sentinel files.  POSIX uses ``fcntl.flock`` (released by the
kernel when the holder dies, so a ``kill -9`` never wedges the cache),
Windows uses ``msvcrt.locking``; platforms with neither degrade to
no-op locks — single-process behaviour is unchanged, only the
cross-process guarantees are lost.

Acquisition is bounded: a lock held past the timeout raises
:class:`~repro.errors.CacheLockTimeout` so one wedged process cannot
stall the fleet.  Contended waits are visible through the
``engine.cache.lock_wait`` counter and the
``engine.cache.lock_wait_s`` histogram.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

from repro.config import resolve_float
from repro.errors import CacheLockTimeout
from repro.observe import TIME_BUCKETS, get_tracer

#: Environment variable bounding any single lock acquisition [s].
LOCK_TIMEOUT_ENV = "REPRO_LOCK_TIMEOUT"

#: Default acquisition bound when the env var is unset [s].
DEFAULT_LOCK_TIMEOUT = 30.0

#: Poll interval while waiting for a contended lock [s].
POLL_INTERVAL = 0.01

try:  # POSIX
    import fcntl

    def _try_lock(fd: int) -> bool:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            return False
        return True

    def _unlock(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_UN)

    HAVE_LOCKS = True
except ImportError:  # pragma: no cover - Windows
    try:
        import msvcrt

        def _try_lock(fd: int) -> bool:
            try:
                os.lseek(fd, 0, os.SEEK_SET)
                msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
            except OSError:
                return False
            return True

        def _unlock(fd: int) -> None:
            os.lseek(fd, 0, os.SEEK_SET)
            msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)

        HAVE_LOCKS = True
    except ImportError:  # pragma: no cover - exotic platform

        def _try_lock(fd: int) -> bool:
            return True

        def _unlock(fd: int) -> None:
            pass

        HAVE_LOCKS = False


def resolve_lock_timeout(timeout: Optional[float] = None) -> float:
    """Lock timeout: explicit > ``REPRO_LOCK_TIMEOUT`` > default.

    Zero, negative, NaN, infinite and non-numeric values (explicit or
    from the environment) are rejected up front — a bad bound here
    would otherwise turn the ``flock`` wait loop into a spin that
    never times out (NaN deadlines compare false forever).
    """
    return resolve_float(LOCK_TIMEOUT_ENV, DEFAULT_LOCK_TIMEOUT,
                         timeout, positive=True)


class FileLock:
    """One advisory lock on one sentinel file.

    Usable as a context manager (blocking acquire with timeout) or via
    :meth:`try_acquire` for the single-flight non-blocking path.  The
    sentinel file is created on demand and deliberately left in place —
    flock state dies with the holder, and keeping the inode stable
    avoids an unlink/recreate race between two acquirers.
    """

    def __init__(self, path: os.PathLike,
                 timeout: Optional[float] = None):
        self.path = Path(path)
        self.timeout = resolve_lock_timeout(timeout)
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        """True while this instance holds the lock."""
        return self._fd is not None

    def _open(self) -> int:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        return os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True when the lock is now held."""
        if self._fd is not None:
            return True
        fd = self._open()
        if _try_lock(fd):
            self._fd = fd
            return True
        os.close(fd)
        return False

    def acquire(self, timeout: Optional[float] = None) -> None:
        """Blocking acquire; :class:`CacheLockTimeout` past the bound.

        A contended wait (any wait at all) is recorded in the
        ``engine.cache.lock_wait`` counter and its duration in the
        ``engine.cache.lock_wait_s`` histogram.
        """
        if self.try_acquire():
            return
        bound = self.timeout if timeout is None else float(timeout)
        deadline = time.monotonic() + bound
        start = time.monotonic()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.lock_wait").inc()
        try:
            while True:
                time.sleep(POLL_INTERVAL)
                if self.try_acquire():
                    return
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"could not acquire {self.path} within "
                        f"{bound:g}s (held by another process?)")
        finally:
            if tracer.enabled:
                tracer.histogram("engine.cache.lock_wait_s",
                                 TIME_BUCKETS).observe(
                    time.monotonic() - start)

    def release(self) -> None:
        """Release the lock (no-op when not held)."""
        if self._fd is None:
            return
        try:
            _unlock(self._fd)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.release()
        except Exception:
            pass
