"""Pluggable execution backends for the task-graph scheduler.

Selection (first match wins):

1. an explicit :class:`ExecutionBackend` instance or spec string passed
   to ``Engine(backend=...)`` / ``--backend``;
2. the :data:`BACKEND_ENV` (``REPRO_BACKEND``) environment variable;
3. the deprecated ``max_workers=`` / ``REPRO_MAX_WORKERS`` width, mapped
   onto ``serial`` (width 1) or ``pool:N``;
4. a machine-width :class:`~repro.engine.backends.pool.PoolBackend`.

Spec grammar: ``"serial"`` | ``"pool"`` | ``"pool:N"`` | ``"workqueue"``.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.engine.backends.base import (
    ExecutionBackend,
    RESULT_CRASHED,
    RESULT_DONE,
    RESULT_ERROR,
    RESULT_PEER,
    TaskExecution,
    TaskResult,
    TransferStats,
    run_stage_inline,
)
from repro.engine.backends.pool import PoolBackend
from repro.engine.backends.serial import SerialBackend
from repro.engine.backends.workqueue import (
    LEASE_TTL_ENV,
    WorkQueueBackend,
    resolve_lease_ttl,
)
from repro.errors import ReproError

#: Environment variable selecting the execution backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Spec strings accepted by :func:`parse_backend_spec`.
BACKEND_SPECS = ("serial", "pool", "pool:N", "workqueue")


def parse_backend_spec(spec: str) -> ExecutionBackend:
    """Instantiate a backend from a spec string (see module docstring)."""
    text = spec.strip().lower()
    if text == "serial":
        return SerialBackend()
    if text == "workqueue":
        return WorkQueueBackend()
    if text == "pool":
        return PoolBackend()
    if text.startswith("pool:"):
        try:
            workers = int(text[len("pool:"):])
        except ValueError:
            raise ReproError(
                f"bad backend spec {spec!r}: expected 'pool:N' with "
                f"integer N") from None
        return PoolBackend(workers)
    raise ReproError(
        f"unknown backend spec {spec!r} "
        f"(expected one of {', '.join(BACKEND_SPECS)})")


def backend_for_workers(workers: Optional[int] = None
                        ) -> ExecutionBackend:
    """Map a worker-count width onto a backend (no deprecation warning).

    Internal call sites that still think in widths (``--workers``,
    parity cells) use this; width 1 is the serial backend, anything
    wider a warm pool.
    """
    from repro.engine.executor import resolve_worker_count
    count = resolve_worker_count(workers)
    if count == 1:
        return SerialBackend()
    return PoolBackend(count)


def resolve_backend(backend: Optional[Union[str, ExecutionBackend]] = None
                    ) -> Optional[ExecutionBackend]:
    """Resolve explicit arg > ``REPRO_BACKEND``; None when neither set."""
    if backend is not None:
        if isinstance(backend, ExecutionBackend):
            return backend
        if isinstance(backend, str):
            return parse_backend_spec(backend)
        raise ReproError(
            f"backend must be a spec string or ExecutionBackend, "
            f"got {type(backend).__name__}")
    env = os.environ.get(BACKEND_ENV)
    if env:
        return parse_backend_spec(env)
    return None


__all__ = [
    "BACKEND_ENV",
    "BACKEND_SPECS",
    "ExecutionBackend",
    "LEASE_TTL_ENV",
    "PoolBackend",
    "RESULT_CRASHED",
    "RESULT_DONE",
    "RESULT_ERROR",
    "RESULT_PEER",
    "SerialBackend",
    "TaskExecution",
    "TaskResult",
    "TransferStats",
    "WorkQueueBackend",
    "backend_for_workers",
    "parse_backend_spec",
    "resolve_backend",
    "resolve_lease_ttl",
    "run_stage_inline",
]
