"""The execution-backend protocol the scheduler drives.

The engine split (1.5): :class:`repro.engine.scheduler.Scheduler` owns
every *semantic* concern — fingerprinting, cache and single-flight,
dependency tracking, retries and timeouts, ``on_error`` modes,
journaling, cancellation — while an :class:`ExecutionBackend` owns
exactly one *mechanical* concern: given a ready
:class:`TaskExecution`, produce a :class:`TaskResult`.  The protocol is
deliberately narrow (``submit`` / ``poll`` / ``shutdown`` plus a few
capability flags), so a new backend cannot accidentally reimplement —
or skip — scheduler semantics.

Capability flags tell the scheduler which failure-domain features are
physically possible on a backend:

``supports_preemption``
    The backend can kill a running task (:meth:`preempt`), so the
    scheduler enforces :class:`~repro.resilience.retry.RetryPolicy`
    timeouts.  In-process backends cannot preempt a compute function.
``remote_workers``
    Tasks run in other processes that can die independently
    (``worker_kill`` faults are drawn, crashes are budgeted and
    surviving work is unaffected).
``external_coordination``
    The backend has its own cross-process coordination (the work
    queue's lease protocol), so the scheduler skips the cache's
    single-flight claims.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import InjectedFault

#: Result statuses a backend can report.
RESULT_DONE = "done"            # artifact computed by this backend
RESULT_ERROR = "error"          # compute raised (exception attached)
RESULT_CRASHED = "crashed"      # the worker died; no exception exists
RESULT_PEER = "peer"            # another process published the artifact


@dataclass
class TaskExecution:
    """Everything a backend needs to run one ready task once.

    The scheduler resolves dependencies to concrete artefacts before
    submitting, so a backend never touches the task graph; ``fault``
    carries a parent-drawn injection directive (``"kill"`` or
    ``"exc:<message>"`` — see :mod:`repro.resilience.faults`).
    """

    task_id: str
    stage: str
    payload: Any
    key: str
    deps: Dict[str, Any]
    attempt: int = 1
    observe: bool = False
    fault: Optional[str] = None


@dataclass
class TaskResult:
    """One task outcome reported by a backend.

    ``wall_time``/``cpu_time`` cover the compute itself (not queueing);
    ``started_at`` is a ``time.perf_counter`` timestamp of compute
    start (monotonic clocks are process-consistent on the platforms the
    pool runs on).  ``transfer_bytes`` counts serialized payload bytes
    that crossed a process boundary for this task (0 for in-process
    backends).
    """

    task_id: str
    status: str
    artifact: Any = None
    worker: str = ""
    wall_time: float = 0.0
    cpu_time: float = 0.0
    started_at: float = -1.0
    error: Optional[BaseException] = None
    error_traceback: str = ""
    observed: Optional[Dict[str, Any]] = None
    transfer_bytes: int = 0
    cache_layer: str = ""


@dataclass
class TransferStats:
    """Bytes a backend moved across process boundaries."""

    total_bytes: int = 0
    shm_bytes: int = 0
    pickle_bytes: int = 0

    def add(self, pickle_bytes: int, shm_bytes: int) -> None:
        self.pickle_bytes += pickle_bytes
        self.shm_bytes += shm_bytes
        self.total_bytes += pickle_bytes + shm_bytes


def run_stage_inline(execution: TaskExecution) -> TaskResult:
    """Execute one task in the calling process (serial / work queue).

    Uses the ambient tracer (spans nest under the engine's run span);
    honours an ``"exc:"`` fault directive.  Exceptions are captured
    into the result, never raised — the scheduler owns retry policy.
    """
    from repro.engine.stages import get_stage
    from repro.observe import get_tracer

    tracer = get_tracer()
    stage = get_stage(execution.stage)
    started = time.perf_counter()
    cpu0 = time.process_time()
    try:
        with tracer.span("engine.compute", task=execution.task_id,
                         stage=execution.stage):
            fault = execution.fault
            if fault is not None and fault.startswith("exc:"):
                raise InjectedFault(fault[4:])
            artifact = stage.compute(execution.payload, execution.deps)
    except Exception as exc:
        return TaskResult(
            task_id=execution.task_id, status=RESULT_ERROR,
            worker=str(os.getpid()),
            wall_time=time.perf_counter() - started,
            cpu_time=time.process_time() - cpu0,
            started_at=started, error=exc)
    return TaskResult(
        task_id=execution.task_id, status=RESULT_DONE, artifact=artifact,
        worker=str(os.getpid()),
        wall_time=time.perf_counter() - started,
        cpu_time=time.process_time() - cpu0,
        started_at=started)


class ExecutionBackend:
    """Base class / protocol of every execution backend.

    Lifecycle: the engine calls :meth:`start` once (idempotent) before
    the first run, the scheduler ``submit``s ready tasks and ``poll``s
    for results until the graph drains, :meth:`reset` clears per-run
    state between runs, and :meth:`shutdown` releases everything.
    """

    #: Backend identifier (manifest field, ``REPRO_BACKEND`` value).
    name: str = "backend"
    #: Concurrent task capacity (manifest ``max_workers``).
    workers: int = 1
    #: Scheduler enforces RetryPolicy.timeout via :meth:`preempt`.
    supports_preemption: bool = False
    #: Tasks run in processes that can die independently.
    remote_workers: bool = False
    #: Backend coordinates across processes itself (skip single-flight).
    external_coordination: bool = False
    #: Backend needs the shared on-disk store to function.
    requires_disk_cache: bool = False
    #: A one-task graph may be inlined serially by the engine.
    inline_single: bool = True

    #: Cross-boundary payload accounting (zero for in-process backends).
    transfer: TransferStats

    def __init__(self) -> None:
        self.transfer = TransferStats()

    # -- lifecycle -----------------------------------------------------
    def start(self, cache) -> None:
        """Bind to the engine's cache; idempotent."""

    def reset(self) -> None:
        """Drop per-run state (queued work); keep warm resources."""

    def shutdown(self) -> None:
        """Release workers/queues; the backend is dead afterwards."""

    # -- the work loop -------------------------------------------------
    def submit(self, execution: TaskExecution) -> None:
        """Accept one ready task (queue it if at capacity)."""
        raise NotImplementedError

    def poll(self, timeout: Optional[float]) -> List[TaskResult]:
        """Return available results, waiting up to ``timeout`` seconds.

        May return an empty list on timeout.  Backends that compute in
        the calling process do the compute inside ``poll``.
        """
        raise NotImplementedError

    def active(self) -> int:
        """Number of submitted-but-unreported tasks."""
        raise NotImplementedError

    # -- cancellation / preemption ------------------------------------
    def quiesce(self) -> List[str]:
        """Stop starting new work; return ids of dropped queued tasks.

        Tasks already running keep running (drain them via ``poll``
        within the grace window, then :meth:`abort`).
        """
        return []

    def abort(self) -> None:
        """Forcibly stop whatever is still running (best effort)."""

    def preempt(self, task_id: str) -> bool:
        """Kill a running task (timeout enforcement); True on success.

        Only meaningful when :attr:`supports_preemption` is set.  After
        a successful preempt the backend must not report a result for
        the task.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r} " \
               f"workers={self.workers}>"


@dataclass
class _QueueEntry:
    """Internal FIFO entry shared by the simple backends."""

    execution: TaskExecution
    submitted_at: float = field(default_factory=time.perf_counter)
