"""Persistent warm-worker pool over per-worker pipes.

The pre-1.5 engine created a cold :class:`ProcessPoolExecutor` per run
and pickled every payload through it; this backend keeps long-lived
worker processes that import the pipeline modules once and then loop
over a duplex :func:`multiprocessing.Pipe`, with NumPy payloads moved
through :mod:`repro.engine.backends.shm` segments instead of the
pickle stream.

Design points the scheduler's failure domain relies on:

* **depth-1 dispatch** — a worker holds at most one task, so when it
  dies the backend knows *exactly* which task was lost (the pre-1.5
  pool declared every in-flight future lost on a single
  ``BrokenProcessPool``);
* **per-worker pipes** — a SIGKILL mid-message corrupts only that
  worker's pipe (observed as EOF → a ``crashed`` result), never a
  shared queue;
* **surgical preemption** — a task over its timeout budget is killed
  by killing *its* worker; other running tasks are untouched (the old
  pool killed and rebuilt everything);
* workers are respawned immediately after any death, so the pool stays
  at width; the scheduler counts crash/preempt events into
  ``manifest.pool_rebuilds``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback as traceback_module
import weakref
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Deque, List, Optional, Tuple

from repro.engine.backends import shm
from repro.engine.backends.base import (
    ExecutionBackend,
    RESULT_CRASHED,
    RESULT_DONE,
    RESULT_ERROR,
    TaskExecution,
    TaskResult,
    _QueueEntry,
)
from repro.errors import InjectedFault

#: Seconds a worker gets to exit after the stop sentinel.
STOP_GRACE_S = 0.5


def _compute_reply(task_id: str, stage_name: str, payload: Any,
                   deps: Any, observe: bool,
                   fault: Optional[str]) -> Tuple:
    """Worker-side stage execution -> a picklable reply tuple."""
    from repro.engine.stages import get_stage

    started = time.perf_counter()
    cpu0 = time.process_time()
    observed = None
    try:
        stage = get_stage(stage_name)
        if observe:
            from repro.observe import Tracer, activate
            tracer = Tracer()
            with activate(tracer):
                with tracer.span("engine.compute", task=task_id,
                                 stage=stage_name):
                    if fault is not None and fault.startswith("exc:"):
                        raise InjectedFault(fault[4:])
                    artifact = stage.compute(payload, deps)
            observed = tracer.export_records()
        else:
            if fault is not None and fault.startswith("exc:"):
                raise InjectedFault(fault[4:])
            artifact = stage.compute(payload, deps)
    except Exception as exc:
        try:
            tb = "".join(traceback_module.format_exception(
                type(exc), exc, exc.__traceback__))[-1500:]
        except Exception:  # pragma: no cover - formatting never critical
            tb = repr(exc)
        return ("error", task_id, exc, tb,
                time.perf_counter() - started,
                time.process_time() - cpu0, started)
    return ("done", task_id, artifact,
            time.perf_counter() - started,
            time.process_time() - cpu0, started, observed)


def _pool_worker_main(conn, parent_conn) -> None:  # pragma: no cover
    """Task loop of one persistent worker (runs in the child)."""
    # covered through subprocess execution, invisible to coverage
    try:
        parent_conn.close()
    except OSError:
        pass
    try:
        from repro.observe import reset as observe_reset
        observe_reset()  # drop any tracer inherited across the fork
    except Exception:
        pass
    try:
        import repro.engine.pipeline  # noqa: F401  (registers stages)
    except ImportError:
        pass
    from repro.resilience.faults import kill_current_process
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            message, _ = shm.loads(payload)
        except Exception:
            break
        if message[0] == "stop":
            break
        _, task_id, stage_name, task_payload, deps, observe, fault = message
        if fault == "kill":
            kill_current_process()
        reply = _compute_reply(task_id, stage_name, task_payload, deps,
                               observe, fault)
        segments: List[str] = []
        try:
            out, segments, _ = shm.dumps(reply)
        except Exception as exc:
            fallback = ("error", task_id, None,
                        f"result serialisation failed: {exc!r}",
                        0.0, 0.0, -1.0)
            out, segments, _ = shm.dumps(fallback)
        try:
            conn.send_bytes(out)
        except (BrokenPipeError, OSError):
            shm.unlink_segments(segments)
            break
    try:
        conn.close()
    except OSError:
        pass


class _PoolWorker:
    """One persistent worker process plus its pipe and assignment."""

    __slots__ = ("process", "conn", "busy", "busy_segments", "pid")

    def __init__(self, context) -> None:
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_pool_worker_main, args=(child_conn, self.conn),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.pid = self.process.pid
        self.busy: Optional[_QueueEntry] = None
        self.busy_segments: List[str] = []

    def kill(self) -> None:
        try:
            self.process.kill()
            self.process.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _shutdown_workers(workers: List[_PoolWorker]) -> None:
    """Finalizer shared by :meth:`PoolBackend.shutdown` and GC."""
    for worker in workers:
        if worker.busy is not None or not worker.process.is_alive():
            worker.kill()
            continue
        try:
            payload, segments, _ = shm.dumps(("stop",))
            worker.conn.send_bytes(payload)
        except (BrokenPipeError, OSError, ValueError):
            worker.kill()
            continue
        worker.process.join(timeout=STOP_GRACE_S)
        if worker.process.is_alive():  # pragma: no cover - slow exit
            worker.kill()
        else:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
    workers.clear()


class PoolBackend(ExecutionBackend):
    """Warm multi-process execution (the ``"pool"`` / ``"pool:N"`` spec)."""

    name = "pool"
    supports_preemption = True
    remote_workers = True

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__()
        from repro.engine.executor import resolve_worker_count
        self.workers = resolve_worker_count(workers)
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context()
        self._workers: List[_PoolWorker] = []
        self._queue: Deque[_QueueEntry] = deque()
        self._frozen = False
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._workers)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> _PoolWorker:
        worker = _PoolWorker(self._context)
        self._workers.append(worker)
        return worker

    def _respawn(self, worker: _PoolWorker) -> None:
        worker.kill()
        self._workers.remove(worker)
        self._spawn()

    def _free_worker(self) -> Optional[_PoolWorker]:
        for worker in self._workers:
            if worker.busy is None and worker.process.is_alive():
                return worker
        if len(self._workers) < self.workers:
            return self._spawn()
        # replace any dead-but-idle worker
        for worker in list(self._workers):
            if worker.busy is None and not worker.process.is_alive():
                worker.kill()
                self._workers.remove(worker)
                return self._spawn()
        return None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, worker: _PoolWorker, entry: _QueueEntry) -> None:
        ex = entry.execution
        message = ("task", ex.task_id, ex.stage, ex.payload, ex.deps,
                   ex.observe, ex.fault)
        payload, segments, shm_bytes = shm.dumps(message)
        self.transfer.add(len(payload), shm_bytes)
        try:
            worker.conn.send_bytes(payload)
        except (BrokenPipeError, OSError):
            shm.unlink_segments(segments)
            self._respawn(worker)
            worker = self._workers[-1]
            payload, segments, shm_bytes = shm.dumps(message)
            self.transfer.add(len(payload), shm_bytes)
            worker.conn.send_bytes(payload)
        worker.busy = entry
        worker.busy_segments = segments

    def _dispatch_queued(self) -> None:
        if self._frozen:
            return
        while self._queue:
            worker = self._free_worker()
            if worker is None:
                return
            self._dispatch(worker, self._queue.popleft())

    def submit(self, execution: TaskExecution) -> None:
        self._queue.append(_QueueEntry(execution))
        self._dispatch_queued()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _reap_crash(self, worker: _PoolWorker) -> TaskResult:
        entry = worker.busy
        pid = worker.pid
        shm.unlink_segments(worker.busy_segments)
        worker.busy = None
        worker.busy_segments = []
        self._respawn(worker)
        return TaskResult(task_id=entry.execution.task_id,
                          status=RESULT_CRASHED, worker=str(pid))

    def poll(self, timeout: Optional[float]) -> List[TaskResult]:
        self._dispatch_queued()
        busy = {w.conn: w for w in self._workers if w.busy is not None}
        if not busy:
            return []
        ready = mp_connection.wait(list(busy), timeout=timeout)
        results: List[TaskResult] = []
        for conn in ready:
            worker = busy[conn]
            if worker.busy is None:  # pragma: no cover - stale readiness
                continue
            try:
                payload = conn.recv_bytes()
                message, shm_bytes = shm.loads(payload)
            except Exception:
                results.append(self._reap_crash(worker))
                continue
            self.transfer.add(len(payload), shm_bytes)
            entry = worker.busy
            worker.busy = None
            worker.busy_segments = []
            if message[0] == "done":
                _, task_id, artifact, wall, cpu, started, observed = message
                results.append(TaskResult(
                    task_id=task_id, status=RESULT_DONE, artifact=artifact,
                    worker=str(worker.pid), wall_time=wall, cpu_time=cpu,
                    started_at=started, observed=observed,
                    transfer_bytes=len(payload) + shm_bytes))
            else:
                _, task_id, exc, tb, wall, cpu, started = message
                if exc is None:
                    from repro.errors import ReproError
                    exc = ReproError(tb)
                results.append(TaskResult(
                    task_id=task_id, status=RESULT_ERROR, error=exc,
                    error_traceback=tb, worker=str(worker.pid),
                    wall_time=wall, cpu_time=cpu, started_at=started))
            del entry
        self._dispatch_queued()
        return results

    def active(self) -> int:
        return len(self._queue) + sum(1 for w in self._workers
                                      if w.busy is not None)

    # ------------------------------------------------------------------
    # cancellation / preemption
    # ------------------------------------------------------------------
    def quiesce(self) -> List[str]:
        self._frozen = True
        dropped = [e.execution.task_id for e in self._queue]
        self._queue.clear()
        return dropped

    def abort(self) -> None:
        for worker in list(self._workers):
            if worker.busy is not None:
                shm.unlink_segments(worker.busy_segments)
                worker.busy = None
                worker.busy_segments = []
                self._respawn(worker)

    def preempt(self, task_id: str) -> bool:
        for worker in list(self._workers):
            if (worker.busy is not None
                    and worker.busy.execution.task_id == task_id):
                shm.unlink_segments(worker.busy_segments)
                worker.busy = None
                worker.busy_segments = []
                self._respawn(worker)
                return True
        return False

    def reset(self) -> None:
        self._queue.clear()
        self._frozen = False

    def shutdown(self) -> None:
        self._queue.clear()
        _shutdown_workers(self._workers)
        self._finalizer.detach()

    #: Pids of the currently live workers (observability/debugging).
    @property
    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._workers if w.process.is_alive()]
