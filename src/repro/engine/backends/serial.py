"""Deterministic in-process execution, one task per poll.

The reference backend: tasks run in the submitting process, in exact
submission order (the scheduler submits in topological order, so
compute order — and therefore deterministic fault-draw order — matches
the pre-1.5 serial engine).  Computing one task per :meth:`poll` keeps
cancellation checks and retry bookkeeping at task boundaries.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional

from repro.engine.backends.base import (
    ExecutionBackend,
    TaskExecution,
    TaskResult,
    run_stage_inline,
)


class SerialBackend(ExecutionBackend):
    """In-process FIFO execution (the ``"serial"`` spec)."""

    name = "serial"
    workers = 1

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[TaskExecution] = deque()

    def submit(self, execution: TaskExecution) -> None:
        self._queue.append(execution)

    def poll(self, timeout: Optional[float]) -> List[TaskResult]:
        if not self._queue:
            if timeout:
                time.sleep(min(timeout, 0.05))
            return []
        execution = self._queue.popleft()
        result = run_stage_inline(execution)
        # the pre-1.5 serial path labelled in-process computes "main"
        result.worker = "main"
        return [result]

    def active(self) -> int:
        return len(self._queue)

    def quiesce(self) -> List[str]:
        dropped = [e.task_id for e in self._queue]
        self._queue.clear()
        return dropped

    def reset(self) -> None:
        self._queue.clear()
