"""Shared-memory transport for NumPy payloads crossing the pool.

The pre-1.5 pool pickled whole dependency dicts — including TCAD curve
arrays — into every task message.  Here a :mod:`pickle`-compatible
codec intercepts large ``numpy.ndarray`` objects and moves their bytes
through :class:`multiprocessing.shared_memory.SharedMemory` segments
instead: the pickle stream carries only ``(segment name, shape,
dtype)`` stubs, and the receiving process copies the data out of the
segment and unlinks it.

Ownership protocol (leak-free on the happy path, parent-reclaimable on
crashes):

* ``dumps`` creates the segments and immediately *unregisters* them
  from the creating process's ``resource_tracker`` — otherwise both
  ends' trackers would fight over unlinking and warn at exit;
* ``loads`` copies every referenced segment out, closes and unlinks it
  (the consumer owns destruction);
* a message that is never consumed (its worker was SIGKILLed) leaks
  its segments until :func:`unlink_segments` — the pool backend tracks
  in-flight segment names per task and reclaims them when it reaps a
  dead worker.

Arrays below :data:`SHM_MIN_BYTES` (and object-dtype arrays, which
hold references) travel inside the pickle stream as before — a segment
per 80-byte sweep axis would cost more in syscalls than it saves in
copies.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, List, Tuple

from repro.config import resolve_int

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
    HAVE_SHM = True
except ImportError:  # pragma: no cover - exotic platforms
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    HAVE_SHM = False

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    np = None  # type: ignore[assignment]

#: Env var overriding the shared-memory size threshold [bytes].
SHM_MIN_BYTES_ENV = "REPRO_SHM_MIN_BYTES"

#: Arrays smaller than this stay in the pickle stream [bytes].  A
#: malformed override fails here, at import, with a ConfigError
#: naming the variable.
SHM_MIN_BYTES = resolve_int(SHM_MIN_BYTES_ENV, 4096, minimum=0)

_STUB = "repro.shm.ndarray"


def _unregister(shm) -> None:
    """Detach a segment from this process's resource tracker."""
    try:  # pragma: no cover - tracker internals vary across versions
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _ShmPickler(pickle.Pickler):
    """Pickler that exports large ndarrays into shared memory."""

    def __init__(self, buffer: io.BytesIO, segments: List[str]):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._segments = segments
        self.shm_bytes = 0

    def persistent_id(self, obj: Any):
        if (np is None or not HAVE_SHM
                or not isinstance(obj, np.ndarray)
                or obj.dtype.hasobject
                or obj.nbytes < SHM_MIN_BYTES):
            return None
        data = np.ascontiguousarray(obj)
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(data.nbytes, 1))
        view = np.ndarray(data.shape, dtype=data.dtype,
                          buffer=segment.buf)
        view[...] = data
        _unregister(segment)
        name = segment.name
        segment.close()
        self._segments.append(name)
        self.shm_bytes += data.nbytes
        return (_STUB, name, data.shape, data.dtype.str)


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler that re-materialises (and destroys) shm segments."""

    def __init__(self, buffer: io.BytesIO):
        super().__init__(buffer)
        self.shm_bytes = 0

    def persistent_load(self, pid):
        tag, name, shape, dtype = pid
        if tag != _STUB:  # pragma: no cover - corrupt stream
            raise pickle.UnpicklingError(f"unknown persistent id {tag!r}")
        segment = shared_memory.SharedMemory(name=name)
        try:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=segment.buf)
            array = np.array(view, copy=True)
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.shm_bytes += array.nbytes
        return array


def dumps(obj: Any) -> Tuple[bytes, List[str], int]:
    """Serialise ``obj``; returns ``(payload, segment names, shm bytes)``.

    The caller ships ``payload`` across the process boundary and keeps
    the segment names so it can :func:`unlink_segments` if the payload
    is never consumed.
    """
    buffer = io.BytesIO()
    segments: List[str] = []
    pickler = _ShmPickler(buffer, segments)
    pickler.dump(obj)
    return buffer.getvalue(), segments, pickler.shm_bytes


def loads(payload: bytes) -> Tuple[Any, int]:
    """Inverse of :func:`dumps`; returns ``(object, shm bytes read)``.

    Destroys every shared-memory segment the payload references.
    """
    unpickler = _ShmUnpickler(io.BytesIO(payload))
    obj = unpickler.load()
    return obj, unpickler.shm_bytes


def unlink_segments(names: List[str]) -> None:
    """Reclaim segments whose consumer died before reading them."""
    if not HAVE_SHM:  # pragma: no cover - exotic platforms
        return
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        _unregister(segment)
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - racing consumer
            pass
