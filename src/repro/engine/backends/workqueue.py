"""Cooperative multi-process draining of one graph via lease files.

``WorkQueueBackend`` lets N independent ``python -m repro.flows``
invocations on shared storage drain one task graph together.  There is
no coordinator process: coordination is entirely filesystem state under
the shared cache directory —

``<cache_dir>/.queue/leases/<key>.lock``
    an advisory :class:`~repro.engine.locks.FileLock` claiming the
    right to compute a fingerprint.  ``flock`` state dies with the
    holder, so a SIGKILLed peer's leases are claimable immediately
    (lease *takeover* needs no timeout in the common crash case);
``<cache_dir>/.queue/leases/<key>.json``
    the holder's heartbeat (``{owner, pid, t}``), refreshed while the
    compute runs.  It covers the *wedged-but-alive* peer: when a lease
    is held but the heartbeat is older than :data:`LEASE_TTL_ENV`
    seconds, other peers compute the key anyway — a bounded, deliberate
    stampede; the cache's atomic publish makes duplicates harmless.

Work-stealing falls out of the claim order: every peer walks its own
ready set and claims whatever is unclaimed, so a fast peer drains tasks
a slow peer has not reached.  Results cross processes through the
content-addressed disk cache only — a fingerprint published by a peer
surfaces here as a ``peer`` result.  The backend computes in the
calling process (one task per :meth:`poll`, keeping cancellation checks
at task boundaries) and marks ``external_coordination`` so the
scheduler skips its own single-flight protocol — the lease *is* the
flight.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import List, Optional

from repro.engine.backends.base import (
    ExecutionBackend,
    RESULT_PEER,
    TaskExecution,
    TaskResult,
    run_stage_inline,
)
from repro.config import resolve_float
from repro.engine.locks import FileLock
from repro.errors import ReproError

#: Environment variable overriding the stale-heartbeat bound [s].
LEASE_TTL_ENV = "REPRO_LEASE_TTL"

#: Default heartbeat age past which a held lease is considered wedged.
DEFAULT_LEASE_TTL = 30.0

#: Queue state lives under ``<cache_dir>/<QUEUE_DIRNAME>/leases``.
QUEUE_DIRNAME = ".queue"

#: Idle poll sleep while every ready task is leased by live peers [s].
IDLE_POLL_S = 0.05


def resolve_lease_ttl(ttl: Optional[float] = None) -> float:
    """Lease TTL: explicit > ``REPRO_LEASE_TTL`` > default.

    Zero, negative, NaN, infinite and non-numeric values (explicit or
    from the environment) are rejected up front — a bad TTL would make
    every held lease look permanently wedged (or never wedged) to the
    takeover logic.
    """
    return resolve_float(LEASE_TTL_ENV, DEFAULT_LEASE_TTL, ttl,
                         positive=True)


class _Lease:
    """One held lease: the lock plus its heartbeat refresher thread."""

    def __init__(self, lease_dir: Path, key: str, owner: str,
                 ttl: float):
        self.lock = FileLock(lease_dir / f"{key}.lock")
        self.beat_path = lease_dir / f"{key}.json"
        self.owner = owner
        self.interval = max(ttl / 4.0, 0.05)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def try_acquire(self) -> bool:
        if not self.lock.try_acquire():
            return False
        self._beat()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return True

    def _beat(self) -> None:
        try:
            with open(self.beat_path, "w", encoding="utf-8") as handle:
                json.dump({"owner": self.owner, "pid": os.getpid(),
                           "t": time.time()}, handle)
        except OSError:  # pragma: no cover - heartbeat is best-effort
            pass

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._beat()

    def release(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        try:
            os.unlink(self.beat_path)
        except OSError:
            pass
        self.lock.release()


def heartbeat_age(lease_dir: Path, key: str) -> Optional[float]:
    """Seconds since the lease holder's last heartbeat; None = no beat."""
    try:
        with open(lease_dir / f"{key}.json", encoding="utf-8") as handle:
            record = json.load(handle)
        return max(time.time() - float(record["t"]), 0.0)
    except (OSError, ValueError, KeyError, TypeError):
        return None


class WorkQueueBackend(ExecutionBackend):
    """Filesystem work queue over the shared cache (``"workqueue"``)."""

    name = "workqueue"
    workers = 1
    external_coordination = True
    requires_disk_cache = True
    # A one-task graph must still go through the lease protocol —
    # inlining it serially would bypass peer coordination.
    inline_single = False

    def __init__(self, lease_ttl: Optional[float] = None) -> None:
        super().__init__()
        self.lease_ttl = resolve_lease_ttl(lease_ttl)
        self.owner = f"{socket.gethostname()}:{os.getpid()}"
        self._cache = None
        self._lease_dir: Optional[Path] = None
        self._pending: List[TaskExecution] = []
        #: Peer-takeover events (stale heartbeat overrides), for tests.
        self.stale_overrides = 0

    def start(self, cache) -> None:
        if cache.cache_dir is None:
            raise ReproError(
                "WorkQueueBackend needs a shared on-disk cache "
                "(cache_dir=... or REPRO_CACHE_DIR)")
        self._cache = cache
        self._lease_dir = Path(cache.cache_dir) / QUEUE_DIRNAME / "leases"
        self._lease_dir.mkdir(parents=True, exist_ok=True)

    def submit(self, execution: TaskExecution) -> None:
        self._pending.append(execution)

    # ------------------------------------------------------------------
    # the claim-or-steal loop
    # ------------------------------------------------------------------
    def _peer_result(self, execution: TaskExecution,
                     stage) -> Optional[TaskResult]:
        """A peer already published this fingerprint to the store?"""
        artifact, layer = self._cache.get(execution.key, stage)
        if layer is None:
            return None
        return TaskResult(task_id=execution.task_id, status=RESULT_PEER,
                          artifact=artifact, worker="peer",
                          cache_layer=layer)

    def _compute(self, execution: TaskExecution,
                 lease: Optional[_Lease]) -> TaskResult:
        try:
            result = run_stage_inline(execution)
        finally:
            if lease is not None:
                lease.release()
        return result

    def poll(self, timeout: Optional[float]) -> List[TaskResult]:
        from repro.engine.stages import get_stage

        results: List[TaskResult] = []
        survivors: List[TaskExecution] = []
        computed = False
        for execution in self._pending:
            stage = get_stage(execution.stage)
            if computed:
                survivors.append(execution)
                continue
            if not stage.persistent:
                # Unsharable through the store: compute claim-free.
                results.append(self._compute(execution, None))
                computed = True
                continue
            peer = self._peer_result(execution, stage)
            if peer is not None:
                results.append(peer)
                continue
            lease = _Lease(self._lease_dir, execution.key, self.owner,
                           self.lease_ttl)
            if lease.try_acquire():
                # Re-check under the lease: the previous holder may
                # have published between our miss and our claim.
                peer = self._peer_result(execution, stage)
                if peer is not None:
                    lease.release()
                    results.append(peer)
                    continue
                results.append(self._compute(execution, lease))
                computed = True
                continue
            age = heartbeat_age(self._lease_dir, execution.key)
            if age is not None and age > self.lease_ttl:
                # Held by a live-but-wedged peer: bounded stampede.
                self.stale_overrides += 1
                results.append(self._compute(execution, None))
                computed = True
                continue
            survivors.append(execution)  # a live peer is on it; re-poll
        self._pending = survivors
        if not results and self._pending:
            # Every ready task is leased by a live peer: their publishes
            # land in the cache, not in our queue, so wake regularly.
            time.sleep(IDLE_POLL_S if timeout is None
                       else min(timeout, IDLE_POLL_S))
        return results

    def active(self) -> int:
        return len(self._pending)

    def quiesce(self) -> List[str]:
        dropped = [e.task_id for e in self._pending]
        self._pending.clear()
        return dropped

    def reset(self) -> None:
        self._pending.clear()
