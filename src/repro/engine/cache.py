"""The two-layer content-addressed artifact cache.

Layer 1 is an in-process dict keyed on the task fingerprint — hits are
free and return the *same object*, preserving the identity semantics the
old ad-hoc memos provided.  Layer 2 is an on-disk JSON store (one file
per artefact, ``<dir>/<stage>/<fingerprint>.json``) shared by every
process on the machine, so a warm cache survives interpreter restarts
and is visible to pool workers.

Directory resolution order: explicit argument > ``REPRO_CACHE_DIR``
environment variable > ``~/.cache/repro``.  Setting
``REPRO_CACHE_DIR`` to the empty string disables the disk layer.

Multi-process safety (see :mod:`repro.engine.locks`): entry publishes
are atomic (``mkstemp`` + ``os.replace``) *and* serialised per key
bucket by advisory file locks, eviction/maintenance runs under a
store-wide maintenance lock, and a per-key *single-flight* protocol
(``begin_flight`` / ``flight_wait`` / ``end_flight``) lets N
invocations sharing one ``REPRO_CACHE_DIR`` avoid stampeding the same
fingerprint: whoever holds a key's flight lock computes, everyone else
waits (bounded by the lock timeout) and then reads the published entry.

Bounded storage: ``REPRO_CACHE_MAX_BYTES`` (plain bytes or ``512M`` /
``2G`` style) caps the on-disk store.  Eviction is LRU over a
light-weight append-only access journal (``.atime.jsonl``), never
touches entries pinned by live runs (see
:func:`repro.engine.durability.active_pins`), and also expires the
quarantine directory and stale temp files.  A full disk (``ENOSPC``)
evicts and retries once before degrading to memory-only writes.
"""

from __future__ import annotations

import errno
import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.locks import FileLock, resolve_lock_timeout
from repro.engine.remote import resolve_remote_cache
from repro.engine.stages import StageDef
from repro.errors import CacheLockTimeout, ConfigError
from repro.observe import get_tracer

#: Environment variable overriding the on-disk store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the on-disk store size (bytes, or with
#: a ``K``/``M``/``G`` suffix).  Unset/empty = unbounded.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Bump to invalidate every on-disk artefact at once (store format).
STORE_FORMAT = 1

#: Quarantined entries kept at most this long.
QUARANTINE_MAX_AGE_S = 7 * 24 * 3600.0

#: Quarantined entries kept at most this many (newest survive).
QUARANTINE_MAX_FILES = 32

#: Orphaned ``*.tmp`` publish files older than this are collected.
TMP_MAX_AGE_S = 3600.0

#: Store-internal directory/file names (never stage names).
QUARANTINE_DIRNAME = ".quarantine"
LOCKS_DIRNAME = ".locks"
FLIGHT_DIRNAME = ".flight"
ATIME_FILENAME = ".atime.jsonl"

#: Poll interval of :meth:`ArtifactCache.flight_wait` [s].
FLIGHT_POLL_S = 0.02

_SIZE_RE = re.compile(r"^\s*(\d+)\s*([kKmMgG]?)[bB]?\s*$")
_SIZE_FACTORS = {"": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def parse_size(text: str, name: str = "size") -> int:
    """Parse a byte budget: plain int or ``K``/``M``/``G`` suffixed.

    ``name`` labels the :class:`ConfigError` (an env-var or parameter
    name) so a malformed value fails at startup naming its source.
    """
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigError(f"{name} must be bytes or e.g. '512M', "
                          f"got {text!r}")
    return int(match.group(1)) * _SIZE_FACTORS[match.group(2).lower()]


def resolve_cache_dir(cache_dir: Optional[os.PathLike] = None,
                      ) -> Optional[Path]:
    """Resolve the on-disk store directory (None disables the layer)."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro"


def resolve_max_bytes(max_bytes: Optional[int] = None) -> Optional[int]:
    """Store budget: explicit > ``REPRO_CACHE_MAX_BYTES`` > unbounded."""
    if max_bytes is not None:
        if max_bytes <= 0:
            raise ConfigError(f"max_bytes must be positive, "
                              f"got {max_bytes}")
        return int(max_bytes)
    env = os.environ.get(CACHE_MAX_BYTES_ENV)
    if env:
        value = parse_size(env, name=CACHE_MAX_BYTES_ENV)
        if value <= 0:
            raise ConfigError(f"{CACHE_MAX_BYTES_ENV} must be positive, "
                              f"got {env!r}")
        return value
    return None


class _NoFlight:
    """Placeholder flight when the disk layer is off (nothing to race)."""

    def release(self) -> None:
        pass


NO_FLIGHT = _NoFlight()


class ArtifactCache:
    """Memory + disk artefact store, keyed on task fingerprints."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 use_disk: bool = True,
                 max_bytes: Optional[int] = None,
                 lock_timeout: Optional[float] = None,
                 remote=None):
        self._memory: Dict[str, Any] = {}
        self.cache_dir = resolve_cache_dir(cache_dir) if use_disk else None
        self.max_bytes = resolve_max_bytes(max_bytes)
        self.lock_timeout = resolve_lock_timeout(lock_timeout)
        #: Optional third tier: a RemoteCache instance, a base URL, or
        #: None (resolve ``REPRO_REMOTE_CACHE``; unset = tier off).
        self.remote = resolve_remote_cache(remote)
        self.hits_memory = 0
        self.hits_disk = 0
        self.hits_remote = 0
        self.misses = 0
        self.corrupt = 0
        self.write_errors = 0
        self.evicted = 0
        self.evicted_bytes = 0
        self.quarantine_expired = 0
        self.lock_timeouts = 0
        self.flight_waits = 0
        self.flight_timeouts = 0
        self._disk_writes_disabled = False
        self._pinned: set = set()
        #: Bytes written since the last budget check (bounds rescans).
        self._written_since_check = 0

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str, stage: StageDef) -> Tuple[Any, Optional[str]]:
        """Return ``(artifact, layer)``; layer is None on a miss."""
        if key in self._memory:
            self.hits_memory += 1
            return self._memory[key], "memory"
        if self.cache_dir is not None and stage.persistent:
            path = self._path(stage.name, key)
            if path.is_file():
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, ValueError):
                    record = None
                if (record is not None
                        and isinstance(record, dict)
                        and record.get("format") == STORE_FORMAT
                        and record.get("stage") == stage.name
                        and record.get("version") == stage.version
                        and "artifact" in record):
                    try:
                        artifact = stage.decode(record["artifact"])
                    except Exception:
                        # Well-formed envelope, mangled artifact body.
                        self._quarantine(path, stage.name, key)
                        self.misses += 1
                        return None, None
                    self._memory[key] = artifact
                    self.hits_disk += 1
                    self._touch(stage.name, key)
                    return artifact, "disk"
                # Corrupt or stale entry: quarantine it so every future
                # lookup is a clean miss instead of a re-parse of the
                # same bad bytes.
                self._quarantine(path, stage.name, key)
        if self.remote is not None and stage.persistent:
            record = self.remote.fetch(stage.name, key)
            if (record is not None
                    and record.get("format") == STORE_FORMAT
                    and record.get("version") == stage.version):
                try:
                    artifact = stage.decode(record["artifact"])
                except Exception:
                    # Digest-valid but undecodable (e.g. a peer on an
                    # incompatible codec): treat as a miss, not corrupt.
                    pass
                else:
                    self._memory[key] = artifact
                    self.hits_remote += 1
                    # Read-through: replicate to the disk tier so the
                    # next process on this host hits locally.
                    self._replicate_local(record, stage, key)
                    return artifact, "remote"
        self.misses += 1
        return None, None

    def _replicate_local(self, record: Dict, stage: StageDef,
                         key: str) -> None:
        """Best-effort disk publish of a remote-fetched record."""
        if (self.cache_dir is None or not stage.persistent
                or self._disk_writes_disabled):
            return
        lock = self._entry_lock(key)
        if not lock.try_acquire():
            return
        try:
            written = self._write_entry(record, stage, key,
                                        evict_on_enospc=True)
        finally:
            lock.release()
        if written:
            self._touch(stage.name, key)
            self._written_since_check += written
            self._maybe_enforce_budget()

    def has_disk_entry(self, stage_name: str, key: str) -> bool:
        """True when the key has a published disk entry (unvalidated)."""
        if self.cache_dir is None:
            return False
        return self._path(stage_name, key).is_file()

    def put(self, key: str, stage: StageDef, artifact: Any) -> None:
        """Store an artefact in memory and (when possible) on disk.

        The publish is atomic (temp file + rename) and serialised per
        key bucket by an advisory file lock, so concurrent invocations
        sharing the store can never interleave into a torn entry.  A
        full disk evicts by LRU and retries once; any other disk write
        failure (permissions...) degrades the cache to memory-only
        writes for the rest of the run — visible through a tracer
        event plus the ``engine.cache.write_errors`` counter, never
        silent, never fatal.

        When a remote tier is attached, the publish is mirrored there
        write-behind (after the local layers, best-effort): a remote
        failure costs nothing but the attempt — the breaker bounds
        even that.
        """
        self._memory[key] = artifact
        if not stage.persistent:
            return
        disk = (self.cache_dir is not None
                and not self._disk_writes_disabled)
        if not disk and self.remote is None:
            return
        record = {
            "format": STORE_FORMAT,
            "stage": stage.name,
            "version": stage.version,
            "key": key,
            "artifact": stage.encode(artifact),
        }
        if disk:
            self._publish_disk(record, stage, key)
        if self.remote is not None:
            body = json.dumps(record, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
            self.remote.store(stage.name, key, body)

    def _publish_disk(self, record: Dict, stage: StageDef,
                      key: str) -> None:
        """One locked, budget-enforcing disk publish (see :meth:`put`)."""
        lock = self._entry_lock(key)
        try:
            lock.acquire()
        except CacheLockTimeout:
            # A wedged peer must not stall the run; skip this disk
            # write (the memory layer already has the artefact).
            self.lock_timeouts += 1
            self._note_lock_timeout(stage.name, key)
            return
        try:
            written = self._write_entry(record, stage, key,
                                        evict_on_enospc=True)
        finally:
            lock.release()
        if written:
            self._touch(stage.name, key)
            self._written_since_check += written
            self._maybe_enforce_budget()

    def _write_entry(self, record: Dict, stage: StageDef, key: str,
                     evict_on_enospc: bool) -> int:
        """One atomic entry publish; returns bytes written (0 = failed)."""
        path = self._path(stage.name, key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent workers may race on the same
            # key; both write identical content, the rename keeps
            # readers safe.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # Canonical form (sorted keys) — the same bytes the
                # remote tier stores, so an entry replicated from the
                # remote store is byte-identical to a local publish of
                # the same artifact.
                json.dump(record, handle, separators=(",", ":"),
                          sort_keys=True)
            self._maybe_kill_mid_write(stage.name)
            size = os.path.getsize(tmp_name)
            os.replace(tmp_name, path)
            return size
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if evict_on_enospc and exc.errno == errno.ENOSPC:
                # Full disk: make room (half the budget, or half the
                # current usage when unbounded) and retry once before
                # giving up on the disk layer.
                target = (self.max_bytes // 2 if self.max_bytes
                          else self.disk_usage()[0] // 2)
                if self.evict_to(target) > 0:
                    return self._write_entry(record, stage, key,
                                             evict_on_enospc=False)
            self.write_errors += 1
            self._disk_writes_disabled = True
            tracer = get_tracer()
            if tracer.enabled:
                tracer.counter("engine.cache.write_errors").inc()
                tracer.event("engine.cache.write_error", stage=stage.name,
                             key=key, error=type(exc).__name__,
                             message=str(exc))
            return 0

    @staticmethod
    def _maybe_kill_mid_write(stage_name: str) -> None:
        """Chaos hook: die between temp write and atomic rename.

        Exercises the crash window of the publish protocol — a reader
        must never observe the half-published entry, only the orphaned
        ``*.tmp`` file that maintenance later collects.
        """
        from repro.resilience.faults import draw_fault, \
            kill_current_process
        if draw_fault("write_kill", stage_name) is not None:
            kill_current_process()  # pragma: no cover - kills process

    def _note_lock_timeout(self, stage_name: str, key: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.lock_timeout").inc()
            tracer.event("engine.cache.lock_timeout", stage=stage_name,
                         key=key)

    def contains(self, key: str) -> bool:
        """True when the key is resident in the memory layer."""
        return key in self._memory

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, stage_name: str, key: str) -> None:
        """Move a corrupt/stale entry aside (bounded forensics store)."""
        dest_dir = self.cache_dir / QUARANTINE_DIRNAME
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / f"{stage_name}.{key}.json")
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.corrupt += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.corrupt").inc()
            tracer.event("engine.cache.quarantined", stage=stage_name,
                         key=key)
        self.expire_quarantine()

    def quarantined(self) -> List[Path]:
        """Current quarantine contents (oldest first)."""
        if self.cache_dir is None:
            return []
        dest_dir = self.cache_dir / QUARANTINE_DIRNAME
        if not dest_dir.is_dir():
            return []
        entries = []
        for path in dest_dir.iterdir():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        return [path for _, path in sorted(entries, key=lambda e: e[0])]

    def expire_quarantine(self,
                          max_age: float = QUARANTINE_MAX_AGE_S,
                          max_files: int = QUARANTINE_MAX_FILES) -> int:
        """Cap the quarantine by age and count; returns removals."""
        entries = self.quarantined()
        if not entries:
            return 0
        cutoff = time.time() - max_age
        doomed = [p for p in entries
                  if self._mtime(p) < cutoff]
        survivors = [p for p in entries if p not in doomed]
        if len(survivors) > max_files:
            doomed.extend(survivors[:len(survivors) - max_files])
        removed = 0
        for path in doomed:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        if removed:
            self.quarantine_expired += removed
            tracer = get_tracer()
            if tracer.enabled:
                tracer.counter("engine.cache.quarantine_expired").inc(
                    removed)
        return removed

    @staticmethod
    def _mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    # ------------------------------------------------------------------
    # single flight (cross-process stampede control)
    # ------------------------------------------------------------------
    def begin_flight(self, key: str):
        """Claim the right to compute ``key``; None when held elsewhere.

        The claim is an advisory lock on ``.flight/<key>.flight`` —
        released explicitly via :meth:`end_flight`, or by the kernel if
        the holder dies, so a crashed process never parks a key
        forever.
        """
        if self.cache_dir is None:
            return NO_FLIGHT
        lock = FileLock(self.cache_dir / FLIGHT_DIRNAME / f"{key}.flight",
                        timeout=self.lock_timeout)
        try:
            if lock.try_acquire():
                return lock
        except OSError:
            return NO_FLIGHT
        return None

    @staticmethod
    def end_flight(flight) -> None:
        """Release a claim from :meth:`begin_flight` (idempotent)."""
        if flight is not None:
            flight.release()

    def flight_wait(self, key: str, stage_name: str,
                    timeout: Optional[float] = None) -> str:
        """Wait for another process's in-flight compute of ``key``.

        Returns ``"ready"`` when the entry got published, ``"free"``
        when the flight lock was dropped without a publish (the peer
        failed — compute it yourself), or ``"timeout"`` after the lock
        timeout (stampede fallback: compute anyway; duplicate work is
        bounded by this window).
        """
        if self.cache_dir is None:
            return "free"
        self.flight_waits += 1
        bound = self.lock_timeout if timeout is None else float(timeout)
        deadline = time.monotonic() + bound
        path = self.cache_dir / FLIGHT_DIRNAME / f"{key}.flight"
        probe = FileLock(path, timeout=bound)
        while True:
            if self.has_disk_entry(stage_name, key):
                return "ready"
            if probe.try_acquire():
                probe.release()
                if self.has_disk_entry(stage_name, key):
                    return "ready"
                return "free"
            if time.monotonic() >= deadline:
                self.flight_timeouts += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.counter("engine.cache.flight_timeout").inc()
                return "timeout"
            time.sleep(FLIGHT_POLL_S)

    # ------------------------------------------------------------------
    # pins (what eviction must never remove)
    # ------------------------------------------------------------------
    def pin(self, keys) -> None:
        """Protect keys from eviction for the lifetime of this process
        (cross-process pins travel via the run journal's pins file)."""
        self._pinned.update(keys)

    def unpin(self, keys) -> None:
        """Drop in-process pins (missing keys are ignored)."""
        self._pinned.difference_update(keys)

    # ------------------------------------------------------------------
    # bounded storage / eviction
    # ------------------------------------------------------------------
    def disk_usage(self) -> Tuple[int, int]:
        """``(bytes, entries)`` of published artefacts on disk."""
        total = 0
        count = 0
        for path, size, _ in self._disk_entries():
            total += size
            count += 1
        return total, count

    def _disk_entries(self) -> List[Tuple[Path, int, float]]:
        """Published entries as ``(path, size, mtime)`` tuples."""
        out: List[Tuple[Path, int, float]] = []
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return out
        for stage_dir in self.cache_dir.iterdir():
            if not stage_dir.is_dir() or stage_dir.name.startswith("."):
                continue
            if stage_dir.name == "runs":
                continue
            for path in stage_dir.iterdir():
                if path.suffix != ".json":
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                out.append((path, stat.st_size, stat.st_mtime))
        return out

    def _touch(self, stage_name: str, key: str) -> None:
        """Append one access record to the LRU journal (best effort).

        ``O_APPEND`` writes of short lines are atomic on POSIX, so
        concurrent invocations interleave whole records; a torn tail is
        simply ignored by the reader.
        """
        if self.cache_dir is None:
            return
        try:
            with open(self.cache_dir / ATIME_FILENAME, "a",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(
                    {"s": stage_name, "k": key, "t": time.time()},
                    separators=(",", ":")) + "\n")
        except OSError:
            pass

    def _read_atimes(self) -> Dict[str, float]:
        """Latest journalled access time per key (tolerant reader)."""
        atimes: Dict[str, float] = {}
        if self.cache_dir is None:
            return atimes
        try:
            with open(self.cache_dir / ATIME_FILENAME, "rb") as handle:
                data = handle.read()
        except OSError:
            return atimes
        for raw in data.split(b"\n"):
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                atimes[str(record["k"])] = float(record["t"])
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                continue
        return atimes

    def _maybe_enforce_budget(self) -> None:
        """Re-check the budget once enough new bytes accumulated."""
        if self.max_bytes is None:
            return
        if self._written_since_check < max(self.max_bytes // 16, 1):
            return
        self._written_since_check = 0
        self.enforce_budget()

    def enforce_budget(self) -> int:
        """Evict LRU entries until the store fits ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        return self.evict_to(self.max_bytes)

    def evict_to(self, target_bytes: int) -> int:
        """Evict least-recently-used unpinned entries to a byte target.

        Runs under the store-wide maintenance lock (non-blocking: when
        another process is already evicting, this is a no-op).  Also
        expires the quarantine, collects orphaned temp files, and
        compacts the access journal.
        """
        if self.cache_dir is None:
            return 0
        maintenance = FileLock(
            self.cache_dir / LOCKS_DIRNAME / "maintenance.lock",
            timeout=self.lock_timeout)
        if not maintenance.try_acquire():
            return 0
        try:
            return self._evict_locked(target_bytes)
        finally:
            maintenance.release()

    def _evict_locked(self, target_bytes: int) -> int:
        self.expire_quarantine()
        self._collect_tmp_files()
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        if total <= target_bytes:
            return 0
        atimes = self._read_atimes()
        from repro.engine.durability import active_pins
        pinned = set(self._pinned) | active_pins(self.cache_dir)
        # LRU order: journalled access time, falling back to mtime for
        # entries that predate the journal.
        ranked = sorted(entries,
                        key=lambda e: atimes.get(e[0].stem, e[2]))
        evicted = 0
        for path, size, _ in ranked:
            if total <= target_bytes:
                break
            if path.stem in pinned:
                continue
            lock = self._entry_lock(path.stem)
            if not lock.try_acquire():
                continue  # a peer is publishing this entry right now
            try:
                os.unlink(path)
            except OSError:
                continue
            finally:
                lock.release()
            self._memory.pop(path.stem, None)
            total -= size
            evicted += 1
            self.evicted += 1
            self.evicted_bytes += size
        if evicted:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.counter("engine.cache.evicted").inc(evicted)
                tracer.event("engine.cache.evicted", entries=evicted,
                             remaining_bytes=total)
            self._compact_atimes(atimes)
        return evicted

    def _collect_tmp_files(self) -> None:
        """Remove orphaned publish temp files (crash debris)."""
        cutoff = time.time() - TMP_MAX_AGE_S
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        for stage_dir in self.cache_dir.iterdir():
            if not stage_dir.is_dir() or stage_dir.name.startswith("."):
                continue
            for path in stage_dir.glob("*.tmp"):
                if self._mtime(path) < cutoff:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass

    def _compact_atimes(self, atimes: Dict[str, float]) -> None:
        """Rewrite the access journal with only surviving entries."""
        survivors = {path.stem for path, _, _ in self._disk_entries()}
        tmp = self.cache_dir / (ATIME_FILENAME + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for key, ts in sorted(atimes.items(),
                                      key=lambda kv: kv[1]):
                    if key in survivors:
                        handle.write(json.dumps(
                            {"s": "", "k": key, "t": ts},
                            separators=(",", ":")) + "\n")
            os.replace(tmp, self.cache_dir / ATIME_FILENAME)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process layer (the disk layer is untouched)."""
        self._memory.clear()

    @property
    def remote_degraded(self) -> bool:
        """True while the remote tier exists and its breaker is open."""
        return self.remote is not None and self.remote.degraded

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/corruption/eviction counters since construction."""
        out: Dict[str, Any] = {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "hits_remote": self.hits_remote,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
            "evicted": self.evicted,
            "evicted_bytes": self.evicted_bytes,
            "quarantine_expired": self.quarantine_expired,
            "lock_timeouts": self.lock_timeouts,
            "flight_waits": self.flight_waits,
            "flight_timeouts": self.flight_timeouts,
        }
        if self.remote is not None:
            out["remote"] = self.remote.stats()
        return out

    def _entry_lock(self, key: str) -> FileLock:
        """The bucket lock serialising writes/evictions of a key."""
        bucket = key[:2] if len(key) >= 2 else "00"
        return FileLock(
            self.cache_dir / LOCKS_DIRNAME / f"entry-{bucket}.lock",
            timeout=self.lock_timeout)

    def _path(self, stage_name: str, key: str) -> Path:
        return self.cache_dir / stage_name / f"{key}.json"
