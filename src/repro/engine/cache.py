"""The two-layer content-addressed artifact cache.

Layer 1 is an in-process dict keyed on the task fingerprint — hits are
free and return the *same object*, preserving the identity semantics the
old ad-hoc memos provided.  Layer 2 is an on-disk JSON store (one file
per artefact, ``<dir>/<stage>/<fingerprint>.json``) shared by every
process on the machine, so a warm cache survives interpreter restarts
and is visible to pool workers.

Directory resolution order: explicit argument > ``REPRO_CACHE_DIR``
environment variable > ``~/.cache/repro``.  Setting
``REPRO_CACHE_DIR`` to the empty string disables the disk layer.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.engine.stages import StageDef

#: Environment variable overriding the on-disk store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every on-disk artefact at once (store format).
STORE_FORMAT = 1


def resolve_cache_dir(cache_dir: Optional[os.PathLike] = None,
                      ) -> Optional[Path]:
    """Resolve the on-disk store directory (None disables the layer)."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Memory + disk artefact store, keyed on task fingerprints."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 use_disk: bool = True):
        self._memory: Dict[str, Any] = {}
        self.cache_dir = resolve_cache_dir(cache_dir) if use_disk else None
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str, stage: StageDef) -> Tuple[Any, Optional[str]]:
        """Return ``(artifact, layer)``; layer is None on a miss."""
        if key in self._memory:
            self.hits_memory += 1
            return self._memory[key], "memory"
        if self.cache_dir is not None and stage.persistent:
            path = self._path(stage.name, key)
            if path.is_file():
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, ValueError):
                    record = None
                if (record is not None
                        and record.get("format") == STORE_FORMAT
                        and record.get("stage") == stage.name
                        and record.get("version") == stage.version):
                    artifact = stage.decode(record["artifact"])
                    self._memory[key] = artifact
                    self.hits_disk += 1
                    return artifact, "disk"
        self.misses += 1
        return None, None

    def put(self, key: str, stage: StageDef, artifact: Any) -> None:
        """Store an artefact in memory and (when possible) on disk."""
        self._memory[key] = artifact
        if self.cache_dir is None or not stage.persistent:
            return
        path = self._path(stage.name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": STORE_FORMAT,
            "stage": stage.name,
            "version": stage.version,
            "key": key,
            "artifact": stage.encode(artifact),
        }
        # Atomic publish: concurrent workers may race on the same key;
        # both write identical content, the rename keeps readers safe.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def contains(self, key: str) -> bool:
        """True when the key is resident in the memory layer."""
        return key in self._memory

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process layer (the disk layer is untouched)."""
        self._memory.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters since construction."""
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
        }

    def _path(self, stage_name: str, key: str) -> Path:
        return self.cache_dir / stage_name / f"{key}.json"
