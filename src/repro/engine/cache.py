"""The two-layer content-addressed artifact cache.

Layer 1 is an in-process dict keyed on the task fingerprint — hits are
free and return the *same object*, preserving the identity semantics the
old ad-hoc memos provided.  Layer 2 is an on-disk JSON store (one file
per artefact, ``<dir>/<stage>/<fingerprint>.json``) shared by every
process on the machine, so a warm cache survives interpreter restarts
and is visible to pool workers.

Directory resolution order: explicit argument > ``REPRO_CACHE_DIR``
environment variable > ``~/.cache/repro``.  Setting
``REPRO_CACHE_DIR`` to the empty string disables the disk layer.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.engine.stages import StageDef
from repro.observe import get_tracer

#: Environment variable overriding the on-disk store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every on-disk artefact at once (store format).
STORE_FORMAT = 1


def resolve_cache_dir(cache_dir: Optional[os.PathLike] = None,
                      ) -> Optional[Path]:
    """Resolve the on-disk store directory (None disables the layer)."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Memory + disk artefact store, keyed on task fingerprints."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 use_disk: bool = True):
        self._memory: Dict[str, Any] = {}
        self.cache_dir = resolve_cache_dir(cache_dir) if use_disk else None
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.corrupt = 0
        self.write_errors = 0
        self._disk_writes_disabled = False

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str, stage: StageDef) -> Tuple[Any, Optional[str]]:
        """Return ``(artifact, layer)``; layer is None on a miss."""
        if key in self._memory:
            self.hits_memory += 1
            return self._memory[key], "memory"
        if self.cache_dir is not None and stage.persistent:
            path = self._path(stage.name, key)
            if path.is_file():
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, ValueError):
                    record = None
                if (record is not None
                        and isinstance(record, dict)
                        and record.get("format") == STORE_FORMAT
                        and record.get("stage") == stage.name
                        and record.get("version") == stage.version
                        and "artifact" in record):
                    try:
                        artifact = stage.decode(record["artifact"])
                    except Exception:
                        # Well-formed envelope, mangled artifact body.
                        self._quarantine(path, stage.name, key)
                        self.misses += 1
                        return None, None
                    self._memory[key] = artifact
                    self.hits_disk += 1
                    return artifact, "disk"
                # Corrupt or stale entry: quarantine it so every future
                # lookup is a clean miss instead of a re-parse of the
                # same bad bytes.
                self._quarantine(path, stage.name, key)
        self.misses += 1
        return None, None

    def _quarantine(self, path: Path, stage_name: str, key: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        self.corrupt += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.cache.corrupt").inc()
            tracer.event("engine.cache.quarantined", stage=stage_name,
                         key=key)

    def put(self, key: str, stage: StageDef, artifact: Any) -> None:
        """Store an artefact in memory and (when possible) on disk.

        A disk write failure (full disk, permissions...) degrades the
        cache to memory-only writes for the rest of the run — visible
        through a tracer event plus the ``engine.cache.write_errors``
        counter, never silent, never fatal.
        """
        self._memory[key] = artifact
        if (self.cache_dir is None or not stage.persistent
                or self._disk_writes_disabled):
            return
        record = {
            "format": STORE_FORMAT,
            "stage": stage.name,
            "version": stage.version,
            "key": key,
            "artifact": stage.encode(artifact),
        }
        path = self._path(stage.name, key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent workers may race on the same
            # key; both write identical content, the rename keeps
            # readers safe.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self.write_errors += 1
            self._disk_writes_disabled = True
            tracer = get_tracer()
            if tracer.enabled:
                tracer.counter("engine.cache.write_errors").inc()
                tracer.event("engine.cache.write_error", stage=stage.name,
                             key=key, error=type(exc).__name__,
                             message=str(exc))

    def contains(self, key: str) -> bool:
        """True when the key is resident in the memory layer."""
        return key in self._memory

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process layer (the disk layer is untouched)."""
        self._memory.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/corruption counters since construction."""
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
        }

    def _path(self, stage_name: str, key: str) -> Path:
        return self.cache_dir / stage_name / f"{key}.json"
