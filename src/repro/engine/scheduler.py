"""The backend-agnostic task-graph scheduler.

This module owns every *semantic* concern of a run — what the engine
guaranteed before the 1.5 scheduler/backend split, extracted from the
old ``Engine._run_serial`` / ``Engine._run_parallel`` monolith:

* dependency tracking: a task is submitted the moment its last
  dependency materialises (no barriers between stages);
* cache bookkeeping: same-key tasks inside one run dedup through the
  content-addressed cache, every outcome becomes a manifest record and
  (when the run is durable) an fsync'd journal line;
* cross-process single-flight: misses claim their fingerprint so N
  invocations sharing a cache directory don't stampede the same
  compute (skipped for backends with ``external_coordination`` — the
  work queue's lease protocol *is* the flight);
* retries with capped exponential backoff, timeout enforcement via
  backend preemption, crash budgets for backends whose workers can die
  independently, ``on_error="continue"`` failure/skip propagation;
* cancellation: stop scheduling, drain in-flight work within the grace
  window, abort the rest, raise :class:`~repro.errors.RunInterrupted`.

The :class:`~repro.engine.backends.base.ExecutionBackend` under it owns
exactly one *mechanical* concern: turn a submitted
:class:`~repro.engine.backends.base.TaskExecution` into a
:class:`~repro.engine.backends.base.TaskResult`.  Fault-injection
draws happen here, in the parent, so a run's fault schedule is
deterministic for a given seed no matter which backend executes it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.backends.base import (
    ExecutionBackend,
    RESULT_CRASHED,
    RESULT_DONE,
    RESULT_ERROR,
    RESULT_PEER,
    TaskExecution,
    TaskResult,
)
from repro.engine.manifest import STATUS_INTERRUPTED, TaskFailure, TaskRecord
from repro.engine.stages import get_stage
from repro.errors import (
    ReproError,
    RunInterrupted,
    TaskTimeoutError,
    WorkerCrashError,
    error_code,
)
from repro.observe import TIME_BUCKETS, get_tracer
from repro.resilience.faults import draw_fault, kill_current_process

#: Poll cadence while parked behind another process's flight [s].
FLIGHT_BLOCK_POLL_S = 0.05


class Scheduler:
    """Drives one engine run over an execution backend."""

    def __init__(self, cache, policy, *, journal=None, cancellation=None,
                 run_start: float = 0.0):
        self.cache = cache
        self.policy = policy
        self.journal = journal
        self.cancellation = cancellation
        #: ``time.perf_counter`` at run start; worker-reported compute
        #: start timestamps are stored relative to it.
        self.run_start = run_start

    # ------------------------------------------------------------------
    # durability / cancellation hooks
    # ------------------------------------------------------------------
    def _journal_task(self, record: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _cancelled(self) -> bool:
        return self.cancellation is not None and self.cancellation.is_set()

    def check_cancelled(self, result) -> None:
        """Raise :class:`RunInterrupted` when the token is set."""
        if self._cancelled():
            self.interrupt(result)

    def interrupt(self, result) -> None:
        result.manifest.status = STATUS_INTERRUPTED
        reason = (self.cancellation.reason if self.cancellation
                  else "cancelled")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.run.interrupted").inc()
            tracer.event("engine.run.interrupted", reason=reason,
                         done=len(result.artifacts))
        raise RunInterrupted(
            f"run interrupted by {reason} after "
            f"{len(result.artifacts)} task(s); resume recomputes only "
            f"what the journal and cache did not preserve",
            manifest=result.manifest,
            run_id=result.manifest.run_id)

    # ------------------------------------------------------------------
    # bookkeeping (manifest records, journal lines, trace events)
    # ------------------------------------------------------------------
    @staticmethod
    def _observe_record(record: TaskRecord, **extra: Any) -> None:
        """Fold a manifest record into the trace's event stream."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        tracer.event("engine.task", task=record.task_id,
                     stage=record.stage, cache=record.cache,
                     wall_time=record.wall_time, worker=record.worker,
                     **extra)
        if record.cache_hit:
            tracer.counter(f"engine.cache_hits.{record.cache}").inc()

    def _started_offset(self, started_at: float) -> float:
        """A backend's compute-start timestamp, relative to run start."""
        if started_at < 0.0:
            return -1.0
        return max(started_at - self.run_start, 0.0)

    def record_computed(self, task, key: str, res: TaskResult, result,
                        attempts: int = 1, **extra: Any) -> None:
        self.cache.put(key, get_stage(task.stage), res.artifact)
        result.artifacts[task.id] = res.artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key, cache="miss",
            wall_time=res.wall_time, worker=res.worker,
            attempts=attempts, cpu_time=res.cpu_time,
            started_at=self._started_offset(res.started_at))
        result.manifest.add(record)
        self._observe_record(record, **extra)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "done",
                            "cache": "miss"})
        # Chaos hook: die at this task boundary — the artefact is
        # published and journalled, so a resume trusts it and loses at
        # most the tasks that were in flight.
        if draw_fault("proc_kill", task.stage) is not None:
            kill_current_process()  # pragma: no cover - kills process

    def record_peer(self, task, key: str, res: TaskResult,
                    result) -> None:
        """A work-queue peer published this fingerprint mid-run."""
        result.artifacts[task.id] = res.artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key,
            cache=res.cache_layer or "disk", wall_time=res.wall_time,
            worker="peer")
        result.manifest.add(record)
        self._observe_record(record)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "done",
                            "cache": record.cache})

    def record_failure(self, task, key: str, exc: BaseException,
                       attempts: int, result,
                       traceback_text: str = "") -> TaskFailure:
        from repro.engine.executor import _traceback_tail
        failure = TaskFailure(
            task_id=task.id, stage=task.stage, key=key, status="failed",
            error_type=type(exc).__name__, message=str(exc),
            attempts=attempts,
            traceback=traceback_text or _traceback_tail(exc),
            code=error_code(exc),
            retryable=isinstance(exc, ReproError) and exc.retryable)
        result.manifest.add_failure(failure)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.task.failed").inc()
            tracer.event("engine.task.failed", task=task.id,
                         stage=task.stage, error=type(exc).__name__,
                         message=str(exc), attempts=attempts)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "failed",
                            "error": type(exc).__name__})
        return failure

    def record_skip(self, task, key: str, upstream: str,
                    result) -> TaskFailure:
        failure = TaskFailure(
            task_id=task.id, stage=task.stage, key=key,
            status="skipped", upstream=upstream,
            code="engine.task_skipped", retryable=True)
        result.manifest.add_failure(failure)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.task.skipped").inc()
            tracer.event("engine.task.skipped", task=task.id,
                         stage=task.stage, upstream=upstream)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "skipped",
                            "upstream": upstream})
        return failure

    @staticmethod
    def note_retry(task, attempt: int, exc: BaseException,
                   delay: float) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("engine.task.retry").inc()
            tracer.event("engine.task.retry", task=task.id,
                         stage=task.stage, attempt=attempt,
                         error=type(exc).__name__, delay_s=delay)

    def try_cache(self, task, key: str, result) -> bool:
        """Serve a task from cache if possible (same-key dedup in a run)."""
        stage = get_stage(task.stage)
        start = time.perf_counter()
        artifact, layer = self.cache.get(key, stage)
        if layer is None:
            return False
        result.artifacts[task.id] = artifact
        record = TaskRecord(
            task_id=task.id, stage=task.stage, key=key, cache=layer,
            wall_time=time.perf_counter() - start, worker="cache")
        result.manifest.add(record)
        self._observe_record(record)
        self._journal_task({"type": "task", "id": task.id, "key": key,
                            "stage": task.stage, "status": "done",
                            "cache": layer})
        return True

    # ------------------------------------------------------------------
    # the unified scheduling loop
    # ------------------------------------------------------------------
    def execute(self, pending: Sequence, keys: Dict[str, str], result,
                backend: ExecutionBackend, on_error: str) -> None:
        """Drain ``pending`` (cache-missed, topologically ordered) tasks.

        One loop serves every backend; capability flags gate the parts
        that only make sense for some execution models:

        * ``remote_workers`` — draw ``worker_kill`` faults at submit,
          budget crash recoveries, measure queue latency;
        * ``supports_preemption`` — enforce ``RetryPolicy.timeout`` by
          preempting overdue tasks;
        * ``external_coordination`` — skip the cache's single-flight
          claims (the backend coordinates across processes itself).
        """
        tracer = get_tracer()
        observing = tracer.enabled
        policy = self.policy
        use_flights = not backend.external_coordination
        draw_kills = backend.remote_workers
        enforce_timeout = (policy.timeout is not None
                           and backend.supports_preemption)

        waiting = {task.id: task for task in pending}   # topo order
        inflight: Dict[str, Any] = {}
        deadlines: Dict[str, float] = {}
        deferred: List[Tuple[float, Any]] = []          # backoff timers
        attempts: Dict[str, int] = {}
        crashes: Dict[str, int] = {}
        submit_times: Dict[str, float] = {}
        inflight_keys = set()
        unresolved: Dict[str, TaskFailure] = {}
        raised: List[BaseException] = []
        #: Cross-process single-flight claims held for in-flight keys.
        flights: Dict[str, Any] = {}
        #: Tasks parked behind another *process's* flight, with the
        #: stampede-fallback deadline after which we compute anyway.
        flight_blocked: Dict[str, float] = {}

        def release_flight(key: str) -> None:
            flight = flights.pop(key, None)
            if flight is not None:
                self.cache.end_flight(flight)

        def raise_or_continue(exc: BaseException) -> None:
            if on_error == "raise":
                raised.append(exc)

        def fail_task(task, exc: BaseException,
                      n_attempts: int, traceback_text: str = "",
                      ) -> BaseException:
            """Record a final failure; fail same-key duplicates too.

            A task parked behind an in-flight duplicate key must fail
            when that computation fails — identical content implies an
            identical outcome, and leaving it parked would deadlock
            the run (the key never materialises).
            """
            key = keys[task.id]
            unresolved[task.id] = self.record_failure(
                task, key, exc, n_attempts, result, traceback_text)
            inflight_keys.discard(key)
            release_flight(key)
            for dup_id in [t for t in waiting if keys[t] == key]:
                dup = waiting.pop(dup_id)
                flight_blocked.pop(dup_id, None)
                unresolved[dup_id] = self.record_failure(
                    dup, key, exc, 0, result)
            return exc

        def submit(task, attempt: int) -> None:
            fault = None
            if draw_kills:
                rule = draw_fault("worker_kill", task.stage)
                if rule is not None:
                    fault = "kill"
            if fault is None:
                rule = draw_fault("stage_exc", task.stage)
                if rule is not None:
                    fault = "exc:" + (rule.message or
                                      f"injected stage_exc at "
                                      f"{task.stage}")
            if observing and draw_kills:
                submit_times[task.id] = time.perf_counter()
                tracer.event("engine.task.submit", task=task.id,
                             stage=task.stage, attempt=attempt)
            deps = {dep: result.artifacts[dep] for dep in task.deps}
            backend.submit(TaskExecution(
                task_id=task.id, stage=task.stage, payload=task.payload,
                key=keys[task.id], deps=deps, attempt=attempt,
                observe=observing, fault=fault))
            inflight[task.id] = task
            if enforce_timeout:
                deadlines[task.id] = time.monotonic() + policy.timeout

        def submit_ready() -> None:
            # loop to quiescence: a cache-served task can unblock its
            # dependents within the same scheduling round
            progress = True
            while progress:
                progress = False
                now = time.monotonic()
                for entry in list(deferred):
                    ready_at, task = entry
                    if now >= ready_at:
                        deferred.remove(entry)
                        attempts[task.id] += 1
                        submit(task, attempts[task.id])
                        progress = True
                for task_id in list(waiting):
                    task = waiting[task_id]
                    key = keys[task_id]
                    if self.try_cache(task, key, result):
                        del waiting[task_id]
                        flight_blocked.pop(task_id, None)
                        progress = True
                        continue
                    bad_dep = next((d for d in task.deps
                                    if d in unresolved), None)
                    if bad_dep is not None:
                        del waiting[task_id]
                        flight_blocked.pop(task_id, None)
                        unresolved[task_id] = self.record_skip(
                            task, key, bad_dep, result)
                        progress = True
                        continue
                    if not all(dep in result.artifacts
                               for dep in task.deps):
                        continue
                    if key in inflight_keys:
                        # same-key task already computing: it resolves
                        # here (from cache) on success, or through
                        # fail_task on failure — never parked forever
                        continue
                    if (use_flights and get_stage(task.stage).persistent
                            and key not in flights):
                        flight = self.cache.begin_flight(key)
                        if flight is None:
                            # Another *process* is computing this key:
                            # stay parked (each round re-checks the
                            # cache above) until its publish lands or
                            # the stampede-fallback deadline passes.
                            deadline = flight_blocked.setdefault(
                                task_id, time.monotonic()
                                + self.cache.lock_timeout)
                            if time.monotonic() < deadline:
                                continue
                        else:
                            flights[key] = flight
                    flight_blocked.pop(task_id, None)
                    del waiting[task_id]
                    inflight_keys.add(key)
                    attempts[task_id] = 1
                    submit(task, 1)
                    progress = True

        def record_success(task, res: TaskResult) -> None:
            key = keys[task.id]
            inflight_keys.discard(key)
            extra = {}
            if observing and draw_kills and task.id in submit_times:
                # Queue latency: time the finished task spent waiting
                # for a worker slot plus serialisation, i.e. everything
                # between submit and compute.
                elapsed = time.perf_counter() - submit_times.pop(task.id)
                queue_s = max(elapsed - res.wall_time, 0.0)
                extra["queue_s"] = queue_s
                tracer.histogram("engine.queue_latency_s",
                                 TIME_BUCKETS).observe(queue_s)
            if observing and res.observed is not None:
                tracer.merge_records(res.observed)
            self.record_computed(task, key, res, result,
                                 attempts=attempts.get(task.id, 1),
                                 **extra)
            # The artefact is published: let waiting peers read it.
            release_flight(key)

        def handle_result(res: TaskResult) -> None:
            task = inflight.pop(res.task_id, None)
            if task is None:
                return  # stale report (e.g. raced a preemption)
            deadlines.pop(res.task_id, None)
            if res.status == RESULT_DONE:
                record_success(task, res)
                return
            if res.status == RESULT_PEER:
                inflight_keys.discard(keys[task.id])
                submit_times.pop(task.id, None)
                self.record_peer(task, keys[task.id], res, result)
                release_flight(keys[task.id])
                return
            submit_times.pop(task.id, None)
            if res.status == RESULT_CRASHED:
                result.manifest.pool_rebuilds += 1
                if observing:
                    tracer.counter("engine.pool.rebuilt").inc()
                    tracer.event("engine.pool.rebuilt", reason="crash",
                                 lost=1)
                crashes[task.id] = crashes.get(task.id, 0) + 1
                n = attempts.get(task.id, 1)
                if crashes[task.id] > policy.retries + 1:
                    exc: BaseException = WorkerCrashError(
                        f"worker died {crashes[task.id]} times while "
                        f"computing {task.id}")
                    raise_or_continue(fail_task(task, exc, n))
                else:
                    # a crash is not the task's fault: resubmit without
                    # burning a retry attempt (the crash budget above
                    # still bounds a task that keeps killing workers)
                    if observing:
                        tracer.event("engine.task.resubmit",
                                     task=task.id, stage=task.stage,
                                     reason="crash")
                    submit(task, n)
                return
            # RESULT_ERROR: the compute raised
            exc = res.error
            n = attempts.get(task.id, 1)
            if n < policy.attempts:
                delay = policy.delay(n)
                self.note_retry(task, n, exc, delay)
                deferred.append((time.monotonic() + delay, task))
            else:
                raise_or_continue(fail_task(task, exc, n,
                                            res.error_traceback))

        def enforce_deadlines() -> None:
            now = time.monotonic()
            overdue = sorted(tid for tid, deadline in deadlines.items()
                             if deadline <= now)
            for task_id in overdue:
                task = inflight.get(task_id)
                deadlines.pop(task_id, None)
                if task is None:  # pragma: no cover - result raced us
                    continue
                if observing:
                    tracer.counter("engine.task.timeout").inc()
                    tracer.event("engine.task.timeout", task=task_id)
                if backend.preempt(task_id):
                    result.manifest.pool_rebuilds += 1
                    if observing:
                        tracer.counter("engine.pool.rebuilt").inc()
                        tracer.event("engine.pool.rebuilt",
                                     reason="timeout", lost=1)
                inflight.pop(task_id, None)
                submit_times.pop(task_id, None)
                exc = TaskTimeoutError(
                    f"task {task_id} exceeded its "
                    f"{policy.timeout:g}s budget")
                n = attempts.get(task_id, 1)
                if n < policy.attempts:
                    delay = policy.delay(n)
                    self.note_retry(task, n, exc, delay)
                    deferred.append((time.monotonic() + delay, task))
                else:
                    raise_or_continue(fail_task(task, exc, n))

        def drain_and_interrupt() -> None:
            """Graceful shutdown: drain in-flight work, then stop.

            No new submissions happen after this point; pending backoff
            retries are dropped; queued-but-unstarted tasks are
            abandoned; running tasks get the grace window to land
            (their results are recorded and journalled), then the
            backend aborts the rest.
            """
            deferred.clear()
            for task_id in backend.quiesce():
                task = inflight.pop(task_id, None)
                if task is not None:
                    inflight_keys.discard(keys[task_id])
                    release_flight(keys[task_id])
            grace = (self.cancellation.grace
                     if self.cancellation is not None else 0.0)
            if (self.cancellation is not None
                    and self.cancellation.expired):
                # A deadline-expired run has no time budget left to
                # drain into: abort in-flight work immediately (its
                # journalled prefix is still resumable).
                grace = 0.0
            deadline = time.monotonic() + grace
            while inflight and time.monotonic() < deadline:
                step = max(0.0, min(0.1,
                                    deadline - time.monotonic()))
                results = backend.poll(step)
                for res in sorted(results, key=lambda r: r.task_id):
                    if res.status in (RESULT_DONE, RESULT_PEER):
                        handle_result(res)
                    else:
                        # failures don't matter anymore: the run is
                        # being interrupted, a resume will retry them
                        inflight.pop(res.task_id, None)
            if inflight:
                backend.abort()
            self.interrupt(result)

        try:
            submit_ready()
            while (inflight or deferred or flight_blocked) and not raised:
                if self._cancelled():
                    drain_and_interrupt()
                if not inflight:
                    # only backoff timers / flight parks remain: sleep
                    # until the earliest wake source
                    now = time.monotonic()
                    sleep_for = 0.0
                    if deferred:
                        earliest = min(ready for ready, _ in deferred)
                        sleep_for = max(sleep_for, earliest - now)
                    if flight_blocked:
                        sleep_for = (min(sleep_for, FLIGHT_BLOCK_POLL_S)
                                     if sleep_for
                                     else FLIGHT_BLOCK_POLL_S)
                    if self.cancellation is not None:
                        remaining = self.cancellation.remaining()
                        if remaining is not None:
                            sleep_for = min(sleep_for, remaining)
                    if sleep_for > 0:
                        time.sleep(sleep_for)
                    submit_ready()
                    continue
                timeout = None
                now = time.monotonic()
                if enforce_timeout and deadlines:
                    timeout = max(0.0, min(deadlines.values()) - now)
                if deferred:
                    wake = max(0.0, min(r for r, _ in deferred) - now)
                    timeout = (wake if timeout is None
                               else min(timeout, wake))
                if flight_blocked:
                    timeout = (FLIGHT_BLOCK_POLL_S if timeout is None
                               else min(timeout, FLIGHT_BLOCK_POLL_S))
                if self.cancellation is not None:
                    remaining = self.cancellation.remaining()
                    if remaining is not None:
                        timeout = (remaining if timeout is None
                                   else min(timeout, remaining))
                results = backend.poll(timeout)
                for res in sorted(results, key=lambda r: r.task_id):
                    handle_result(res)
                if raised:
                    continue
                if enforce_timeout and deadlines:
                    enforce_deadlines()
                submit_ready()
            if raised:
                raise raised[0]
            if waiting:
                # Structural safety net: any task still parked here is a
                # scheduler bug — fail loudly rather than deadlock.
                raise ReproError(
                    f"scheduler stalled with {len(waiting)} unresolved "
                    f"task(s): {sorted(waiting)}")
        finally:
            for key in list(flights):
                release_flight(key)
            backend.reset()
