"""The paper pipeline expressed as engine stages and task builders.

Four stages mirror the data flow of the paper (Fig. 3 extraction feeding
the Section IV cell evaluation):

* ``tcad_targets`` — TCAD characterisation of one (variant, polarity)
  device under one process / sweep plan;
* ``extraction``  — the staged compact-model extraction against those
  targets;
* ``model_set``   — the (nmos, pmos) model pair a cell variant
  instantiates (n-type from the variant, p-type always traditional);
* ``cell_ppa``    — transient simulation + delay/power/area measurement
  of one (cell, variant) implementation under given parasitics/dt.

Every payload embeds the **full process record** (defaults expanded),
so two different :class:`~repro.geometry.process.ProcessParameters` can
never share an artefact — the stale-cache class of the old ad-hoc memos,
which keyed on ``id(process)``, is structurally impossible here.

Task builders return the task plus its transitive supporting tasks;
:func:`merge_tasks` dedupes shared support (all four variants share the
traditional PMOS chain, every cell of a variant shares its model set).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cells.variants import DeviceVariant, ModelSet
from repro.engine.executor import Engine, Task, default_engine
from repro.engine.fingerprint import fingerprint
from repro.engine.stages import register_stage
from repro.errors import ReproError
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity
from repro.tcad.simulator import SweepSpec

#: Stage names (for manifest queries and cache layout).
STAGE_TARGETS = "tcad_targets"
STAGE_EXTRACTION = "extraction"
STAGE_MODEL_SET = "model_set"
STAGE_CELL_PPA = "cell_ppa"

#: Default extraction pass count (mirrors ``ExtractionFlow``).
EXTRACTION_PASSES = 2


# ----------------------------------------------------------------------
# payload records (canonical, defaults expanded)
# ----------------------------------------------------------------------
def process_record(process: Optional[ProcessParameters]) -> Dict[str, float]:
    """Full process record; ``None`` expands to the Table I defaults."""
    return asdict(process or DEFAULT_PROCESS)


def sweep_record(spec: Optional[SweepSpec]) -> Dict[str, Any]:
    """Full sweep-plan record; ``None`` expands to the paper defaults."""
    record = asdict(spec or SweepSpec())
    record["idvd_gate_biases"] = [float(v)
                                  for v in record["idvd_gate_biases"]]
    return record


def parasitics_record(parasitics) -> Dict[str, float]:
    """Full parasitics record (import-cycle-free duck typing)."""
    return asdict(parasitics)


def _process_from(record: Dict[str, float]) -> ProcessParameters:
    return ProcessParameters(**record)


def _sweep_from(record: Dict[str, Any]) -> SweepSpec:
    record = dict(record)
    record["idvd_gate_biases"] = tuple(record["idvd_gate_biases"])
    return SweepSpec(**record)


def _single_dep(deps: Dict[str, Any], stage: str) -> Any:
    if len(deps) != 1:
        raise ReproError(f"{stage} expects exactly one dependency, "
                         f"got {sorted(deps)}")
    return next(iter(deps.values()))


# ----------------------------------------------------------------------
# stage compute functions (pure; run in pool workers)
# ----------------------------------------------------------------------
def _compute_targets(payload: Dict, deps: Dict[str, Any]):
    from repro.extraction.targets import characterize_device
    from repro.tcad.device import design_for_variant

    device = design_for_variant(
        ChannelCount[payload["variant"]],
        Polarity(payload["polarity"]),
        _process_from(payload["process"]),
    )
    return characterize_device(device, _sweep_from(payload["sweep"]))


def _compute_extraction(payload: Dict, deps: Dict[str, Any]):
    from repro.extraction.flow import ExtractionFlow

    targets = _single_dep(deps, STAGE_EXTRACTION)
    return ExtractionFlow(passes=payload["passes"]).run(targets)


def _compute_model_set(payload: Dict, deps: Dict[str, Any]) -> ModelSet:
    by_polarity = {}
    for extracted in deps.values():
        by_polarity[extracted.targets.polarity] = extracted
    if set(by_polarity) != {Polarity.NMOS, Polarity.PMOS}:
        raise ReproError("model_set needs one NMOS and one PMOS extraction")
    return ModelSet(
        variant=DeviceVariant(payload["variant"]),
        nmos=by_polarity[Polarity.NMOS].model,
        pmos=by_polarity[Polarity.PMOS].model,
    )


def _compute_cell_ppa(payload: Dict, deps: Dict[str, Any]):
    from repro.cells.library import get_cell
    from repro.cells.netlist_builder import Parasitics
    from repro.ppa.area import cell_area, substrate_area
    from repro.ppa.delay import measure_cell_delay
    from repro.ppa.power import measure_cell_power
    from repro.ppa.runner import CellPPA, simulate_cell

    models = _single_dep(deps, STAGE_CELL_PPA)
    spec = get_cell(payload["cell"])
    variant = DeviceVariant(payload["variant"])
    netlist, results = simulate_cell(
        spec, variant, Parasitics(**payload["parasitics"]),
        payload["dt"], models=models)
    return CellPPA(
        cell_name=spec.name,
        variant=variant,
        delay=measure_cell_delay(netlist, results),
        power=measure_cell_power(netlist, results),
        area=cell_area(spec, variant),
        substrate=substrate_area(spec, variant),
    )


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
def _encode_targets(targets) -> Dict:
    return targets.to_dict()


def _decode_targets(data: Dict):
    from repro.extraction.targets import DeviceTargets
    return DeviceTargets.from_dict(data)


def _encode_extraction(extracted) -> Dict:
    return extracted.to_dict()


def _decode_extraction(data: Dict):
    from repro.extraction.flow import ExtractedDevice
    return ExtractedDevice.from_dict(data)


def _encode_model_set(models: ModelSet) -> Dict:
    return models.to_dict()


def _decode_model_set(data: Dict) -> ModelSet:
    return ModelSet.from_dict(data)


def _encode_cell_ppa(ppa) -> Dict:
    return ppa.to_dict()


def _decode_cell_ppa(data: Dict):
    from repro.ppa.runner import CellPPA
    return CellPPA.from_dict(data)


register_stage(STAGE_TARGETS, version=1, compute=_compute_targets,
               encode=_encode_targets, decode=_decode_targets)
register_stage(STAGE_EXTRACTION, version=1, compute=_compute_extraction,
               encode=_encode_extraction, decode=_decode_extraction)
register_stage(STAGE_MODEL_SET, version=1, compute=_compute_model_set,
               encode=_encode_model_set, decode=_decode_model_set)
register_stage(STAGE_CELL_PPA, version=1, compute=_compute_cell_ppa,
               encode=_encode_cell_ppa, decode=_decode_cell_ppa)


# ----------------------------------------------------------------------
# task builders
# ----------------------------------------------------------------------
def merge_tasks(*groups: Sequence[Task]) -> List[Task]:
    """Concatenate task groups, deduping shared tasks by id.

    Ids embed a payload fingerprint, so two tasks sharing an id are the
    same task; a same-id task with a different stage or payload is a
    builder bug and raises.
    """
    merged: Dict[str, Task] = {}
    for group in groups:
        for task in group:
            existing = merged.get(task.id)
            if existing is None:
                merged[task.id] = task
            elif existing != task:
                raise ReproError(f"conflicting definitions of task "
                                 f"{task.id!r}")
    return list(merged.values())


def targets_task(variant: ChannelCount, polarity: Polarity,
                 process: Optional[ProcessParameters] = None,
                 spec: Optional[SweepSpec] = None) -> Task:
    """TCAD characterisation task for one (variant, polarity) device."""
    payload = {
        "variant": variant.name,
        "polarity": polarity.value,
        "process": process_record(process),
        "sweep": sweep_record(spec),
    }
    task_id = (f"targets:{variant.name}:{polarity.value}:"
               f"{fingerprint(payload)[:8]}")
    return Task(id=task_id, stage=STAGE_TARGETS, payload=payload)


def extraction_tasks(variant: ChannelCount, polarity: Polarity,
                     process: Optional[ProcessParameters] = None,
                     spec: Optional[SweepSpec] = None,
                     passes: int = EXTRACTION_PASSES,
                     ) -> Tuple[Task, List[Task]]:
    """Extraction task (plus its targets dependency)."""
    targets = targets_task(variant, polarity, process, spec)
    payload = {"passes": passes}
    task_id = (f"extract:{variant.name}:{polarity.value}:"
               f"{fingerprint([payload, targets.id])[:8]}")
    task = Task(id=task_id, stage=STAGE_EXTRACTION, payload=payload,
                deps=(targets.id,))
    return task, [targets, task]


def model_set_tasks(variant: DeviceVariant,
                    process: Optional[ProcessParameters] = None,
                    ) -> Tuple[Task, List[Task]]:
    """Model-set task for a cell variant (plus its extraction chain)."""
    n_task, n_support = extraction_tasks(variant.n_channel_count,
                                         Polarity.NMOS, process)
    p_task, p_support = extraction_tasks(variant.p_channel_count,
                                         Polarity.PMOS, process)
    payload = {"variant": variant.value}
    task_id = (f"models:{variant.name}:"
               f"{fingerprint([payload, n_task.id, p_task.id])[:8]}")
    task = Task(id=task_id, stage=STAGE_MODEL_SET, payload=payload,
                deps=(n_task.id, p_task.id))
    return task, merge_tasks(n_support, p_support, [task])


def cell_ppa_tasks(cell_name: str, variant: DeviceVariant,
                   parasitics=None, dt: Optional[float] = None,
                   process: Optional[ProcessParameters] = None,
                   ) -> Tuple[Task, List[Task]]:
    """PPA task for one (cell, variant) point (plus its model chain)."""
    from repro.cells.netlist_builder import Parasitics
    from repro.ppa.runner import DEFAULT_DT

    models_task, support = model_set_tasks(variant, process)
    payload = {
        "cell": cell_name,
        "variant": variant.value,
        "parasitics": parasitics_record(parasitics
                                        if parasitics is not None
                                        else Parasitics()),
        "dt": float(dt if dt is not None else DEFAULT_DT),
    }
    task_id = (f"ppa:{cell_name}:{variant.name}:"
               f"{fingerprint([payload, models_task.id])[:8]}")
    task = Task(id=task_id, stage=STAGE_CELL_PPA, payload=payload,
                deps=(models_task.id,))
    return task, merge_tasks(support, [task])


# ----------------------------------------------------------------------
# one-artefact conveniences (what the thin API shims call)
# ----------------------------------------------------------------------
def device_targets(variant: ChannelCount, polarity: Polarity,
                   process: Optional[ProcessParameters] = None,
                   spec: Optional[SweepSpec] = None,
                   engine: Optional[Engine] = None):
    """Characterise one device through the engine (cached)."""
    engine = engine or default_engine()
    task = targets_task(variant, polarity, process, spec)
    return engine.run([task])[task.id]


def extracted_device(variant: ChannelCount, polarity: Polarity,
                     process: Optional[ProcessParameters] = None,
                     spec: Optional[SweepSpec] = None,
                     engine: Optional[Engine] = None):
    """Extract one device's compact model through the engine (cached)."""
    engine = engine or default_engine()
    task, support = extraction_tasks(variant, polarity, process, spec)
    return engine.run(support)[task.id]


def model_set(variant: DeviceVariant,
              process: Optional[ProcessParameters] = None,
              engine: Optional[Engine] = None) -> ModelSet:
    """Materialise a variant's (nmos, pmos) models through the engine."""
    engine = engine or default_engine()
    task, support = model_set_tasks(variant, process)
    return engine.run(support)[task.id]


def cell_ppa(cell_name: str, variant: DeviceVariant, parasitics=None,
             dt: Optional[float] = None,
             process: Optional[ProcessParameters] = None,
             engine: Optional[Engine] = None):
    """Evaluate one (cell, variant) PPA point through the engine."""
    engine = engine or default_engine()
    task, support = cell_ppa_tasks(cell_name, variant, parasitics, dt,
                                   process)
    return engine.run(support)[task.id]
