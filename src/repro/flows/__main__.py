"""``python -m repro.flows`` entry point (see :mod:`repro.flows.cli`)."""

import sys

from repro.flows.cli import main

sys.exit(main())
