"""End-to-end pipelines.

:func:`run_full_flow` is the in-process entry point;
:func:`run_durable_flow` / :func:`resume_run` add crash-safe journals,
eviction pins and graceful shutdown (``python -m repro.flows`` drives
them from the shell — see :mod:`repro.flows.cli`).
"""

from repro.flows.durable import (
    DurableFlowRun,
    resume_run,
    run_durable_flow,
)
from repro.flows.full_flow import (
    FullFlowResult,
    build_flow_graph,
    run_extractions,
    run_full_flow,
)

__all__ = [
    "DurableFlowRun",
    "FullFlowResult",
    "build_flow_graph",
    "resume_run",
    "run_durable_flow",
    "run_extractions",
    "run_full_flow",
]
