"""End-to-end pipelines."""

from repro.flows.full_flow import (
    FullFlowResult,
    run_extractions,
    run_full_flow,
)

__all__ = ["FullFlowResult", "run_extractions", "run_full_flow"]
