"""Durable (journalled, resumable, interruptible) pipeline runs.

:func:`run_durable_flow` wraps :func:`repro.flows.run_full_flow` with
the durability machinery of :mod:`repro.engine.durability`:

* the flow parameters and every task outcome are appended (fsync'd) to
  ``<cache_dir>/runs/<run_id>/journal.jsonl`` as they happen;
* the graph's artefact keys are pinned against LRU eviction for the
  run's lifetime (``pins.json`` + ``ACTIVE`` marker);
* SIGINT/SIGTERM drain gracefully within ``REPRO_SHUTDOWN_GRACE``
  seconds, then raise :class:`~repro.errors.RunInterrupted` — the
  journal and a partial ``manifest.json`` (status ``interrupted``) are
  flushed first, so the run is resumable;
* :func:`resume_run` replays the journal, rebuilds the *same* graph
  from the journalled parameters (same content-addressed fingerprints)
  and re-executes it — completed artefacts are trusted only through
  the validating disk cache, so a ``kill -9`` at any point loses at
  most the in-flight tasks.

``python -m repro.flows`` (see :mod:`repro.flows.cli`) drives both
entry points from the command line.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cells.library import CELL_NAMES
from repro.cells.netlist_builder import Parasitics
from repro.cells.variants import DeviceVariant
from repro.engine import Engine, backend_for_workers, default_engine
from repro.engine.durability import (
    CancellationToken,
    GracefulShutdown,
    RunJournal,
    clear_active,
    load_run,
    mark_active,
    new_run_id,
    run_dir,
    write_pins,
)
from repro.engine.fingerprint import fingerprint
from repro.errors import ReproError, RunInterrupted
from repro.flows.full_flow import (
    FullFlowResult,
    assemble_flow_result,
    build_flow_graph,
)
from repro.geometry.process import ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.observe import maybe_activate
from repro.ppa.runner import DEFAULT_DT

#: Manifest filename written into the run directory.
MANIFEST_FILENAME = "manifest.json"


@dataclass
class DurableFlowRun:
    """Outcome of one completed durable run.

    ``resumed`` counts the ``resume`` records in the journal (0 for a
    run that finished in one invocation); ``run_dir`` holds the
    journal, pins and the saved ``manifest.json``.
    """

    run_id: str
    result: FullFlowResult
    run_dir: Path
    resumed: int = 0


def flow_record(cells: List[str],
                cell_variants: List[DeviceVariant],
                channel_variants: List[ChannelCount],
                process: Optional[ProcessParameters],
                parasitics: Optional[Parasitics],
                dt: float) -> Dict[str, Any]:
    """JSON-serialisable flow parameters for the journal's begin record.

    Everything that shapes the task graph goes in, so a resume rebuilds
    an identical graph (identical fingerprints) from the journal alone.
    """
    return {
        "cells": list(cells),
        "variants": [v.value for v in cell_variants],
        "extraction_variants": [v.name for v in channel_variants],
        "process": asdict(process) if process is not None else None,
        "parasitics": asdict(parasitics) if parasitics is not None else None,
        "dt": dt,
    }


def _flow_kwargs_from(record: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`flow_record` (journal -> graph-builder args)."""
    try:
        return {
            "cells": [str(c) for c in record["cells"]],
            "cell_variants": [DeviceVariant(v) for v in record["variants"]],
            "channel_variants": [ChannelCount[v]
                                 for v in record["extraction_variants"]],
            "process": (ProcessParameters(**record["process"])
                        if record.get("process") else None),
            "parasitics": (Parasitics(**record["parasitics"])
                           if record.get("parasitics") else None),
            "dt": float(record.get("dt") or DEFAULT_DT),
        }
    except (KeyError, ValueError, TypeError) as exc:
        raise ReproError(
            f"journalled flow record is unusable: {exc}") from exc


def derive_run_id(flow: Dict[str, Any], prefix: str = "req") -> str:
    """A deterministic run id for one flow description.

    Identical requests map to the identical run id, which is what
    makes server-side resume work with zero client bookkeeping: a
    client that retries a timed-out or interrupted request lands on
    the *same* journal, and the engine recomputes only what the
    journal and the content-addressed cache did not preserve.
    """
    return f"{prefix}-{fingerprint(flow)[:16]}"


def _resolve_durable_engine(engine: Optional[Engine],
                            cache_dir,
                            max_workers: Optional[int],
                            backend=None) -> Engine:
    if engine is None:
        if (cache_dir is not None or max_workers is not None
                or backend is not None):
            if backend is None and max_workers is not None:
                backend = backend_for_workers(max_workers)
            engine = Engine(backend=backend, cache_dir=cache_dir)
        else:
            engine = default_engine()
    if engine.cache.cache_dir is None:
        raise ReproError(
            "durable runs need a disk cache: set REPRO_CACHE_DIR or pass "
            "cache_dir= (the journal and resumable artefacts live there)")
    return engine


def run_durable_flow(*,
                     cells: Optional[List[str]] = None,
                     variants: Optional[List[DeviceVariant]] = None,
                     extraction_variants: Optional[List[ChannelCount]]
                     = None,
                     process: Optional[ProcessParameters] = None,
                     parasitics: Optional[Parasitics] = None,
                     dt: float = DEFAULT_DT,
                     engine: Optional[Engine] = None,
                     cache_dir=None,
                     max_workers: Optional[int] = None,
                     backend=None,
                     run_id: Optional[str] = None,
                     grace: Optional[float] = None,
                     cancellation: Optional[CancellationToken] = None,
                     deadline: Optional[float] = None,
                     observe=None) -> DurableFlowRun:
    """Run the full pipeline durably; resume it by reusing ``run_id``.

    A fresh ``run_id`` (default) starts a new journal; an existing one
    appends a ``resume`` record and re-executes the journalled graph —
    the content-addressed cache turns everything that already finished
    into cache hits.  On SIGINT/SIGTERM the run drains within ``grace``
    seconds (default ``REPRO_SHUTDOWN_GRACE``), journals an
    ``interrupted`` end record, saves the partial manifest and raises
    :class:`~repro.errors.RunInterrupted` — pass the same ``run_id``
    (or use :func:`resume_run` / the CLI) to continue it later.

    ``cancellation`` hands control of interruption to the caller (the
    characterisation service cancels per-request tokens instead of
    installing signal handlers, which only work on the main thread);
    when provided, no signal handlers are installed here.  ``deadline``
    bounds the run's wall time in seconds — past it the run winds down
    at the next task boundary and raises
    :class:`~repro.errors.RunInterrupted` with the resumable run id.
    """
    engine = _resolve_durable_engine(engine, cache_dir, max_workers,
                                     backend)
    cache_root = engine.cache.cache_dir
    run_id = run_id or new_run_id()
    directory = run_dir(cache_root, run_id)
    journal = RunJournal.for_run(cache_root, run_id)

    cells = list(cells) if cells else list(CELL_NAMES)
    cell_variants = list(variants) if variants else list(DeviceVariant)
    channel_variants = (list(extraction_variants) if extraction_variants
                        else list(ChannelCount))
    flow = flow_record(cells, cell_variants, channel_variants,
                        process, parasitics, dt)

    resumed = 0
    if journal.exists:
        state = load_run(cache_root, run_id)
        if state.flow is not None and state.flow != flow:
            raise ReproError(
                f"run {run_id!r} was journalled with different flow "
                f"parameters; resume it without overrides "
                f"(resume_run / --resume)")
        resumed = state.resumes + 1
        journal.append({"type": "resume", "run_id": run_id})
    else:
        journal.append({"type": "begin", "run_id": run_id, "flow": flow})

    graph, extraction_pairs, ppa_pairs = build_flow_graph(
        cells, cell_variants, channel_variants, process, parasitics, dt)
    mark_active(directory)
    write_pins(directory, engine.task_keys(graph).values())

    try:
        if cancellation is not None:
            # The caller owns interruption (per-request deadline/abort
            # tokens of the service) — don't touch signal handlers.
            with maybe_activate(observe):
                run = engine.run(graph, journal=journal,
                                 cancellation=cancellation,
                                 deadline=deadline)
        else:
            with GracefulShutdown(grace) as shutdown:
                with maybe_activate(observe):
                    run = engine.run(graph, journal=journal,
                                     cancellation=shutdown.token,
                                     deadline=deadline)
    except RunInterrupted as exc:
        exc.run_id = run_id
        if exc.manifest is not None:
            exc.manifest.run_id = run_id
            exc.manifest.save(directory / MANIFEST_FILENAME)
        journal.append({"type": "end", "status": "interrupted",
                        "run_id": run_id})
        journal.close()
        # ACTIVE stays: the run is resumable and its artefacts stay
        # pinned (until PIN_TTL_S lapses for an abandoned run).
        raise
    except BaseException:
        journal.close()
        raise

    run.manifest.run_id = run_id
    journal.append({"type": "end", "status": "completed",
                    "run_id": run_id})
    journal.close()
    run.manifest.save(directory / MANIFEST_FILENAME)
    clear_active(directory)
    result = assemble_flow_result(run, extraction_pairs, ppa_pairs)
    return DurableFlowRun(run_id=run_id, result=result,
                          run_dir=directory, resumed=resumed)


def resume_run(run_id: str, *,
               engine: Optional[Engine] = None,
               cache_dir=None,
               max_workers: Optional[int] = None,
               backend=None,
               grace: Optional[float] = None,
               cancellation: Optional[CancellationToken] = None,
               deadline: Optional[float] = None,
               observe=None) -> DurableFlowRun:
    """Continue an interrupted durable run from its journal.

    Replays ``<cache_dir>/runs/<run_id>/journal.jsonl``, rebuilds the
    journalled task graph and re-executes it.  Completed work is
    trusted only through the content-addressed disk cache (corrupt or
    evicted entries are simply recomputed); at most the killed
    invocation's in-flight tasks are repeated.
    """
    engine = _resolve_durable_engine(engine, cache_dir, max_workers,
                                     backend)
    state = load_run(engine.cache.cache_dir, run_id)
    if state.flow is None:
        raise ReproError(
            f"journal of run {run_id!r} carries no flow parameters; "
            f"cannot rebuild its task graph")
    kwargs = _flow_kwargs_from(state.flow)
    return run_durable_flow(
        cells=kwargs["cells"],
        variants=kwargs["cell_variants"],
        extraction_variants=kwargs["channel_variants"],
        process=kwargs["process"],
        parasitics=kwargs["parasitics"],
        dt=kwargs["dt"],
        engine=engine,
        run_id=run_id,
        grace=grace,
        cancellation=cancellation,
        deadline=deadline,
        observe=observe)
