"""The complete paper pipeline in one call.

TCAD characterisation of all eight devices -> staged extraction ->
standard-cell simulation -> PPA comparison + area report.  This is what
the benchmark harness and the end-to-end example drive.

The whole run is submitted to the execution engine as a single task
graph — 8 independent (variant, polarity) extractions feeding up to 56
independent (cell, variant) transients — so a parallel engine fans the
grid out across workers and a warm artifact cache skips straight to the
report assembly.  ``FullFlowResult.manifest`` records what actually
happened, task by task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cells.library import CELL_NAMES
from repro.cells.netlist_builder import Parasitics
from repro.cells.variants import DeviceVariant
from repro.deprecation import absorb_positional, absorb_renamed, \
    warn_deprecated
from repro.engine import (
    Engine,
    RunManifest,
    backend_for_workers,
    default_engine,
)
from repro.engine.pipeline import (
    cell_ppa_tasks,
    extraction_tasks,
    merge_tasks,
)
from repro.extraction.results import ExtractionReport
from repro.geometry.process import ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.layout.report import AreaReport, build_area_report
from repro.observe import maybe_activate
from repro.ppa.comparison import PpaComparison
from repro.ppa.runner import DEFAULT_DT
from repro.tcad.device import Polarity


@dataclass
class FullFlowResult:
    """Everything the paper's evaluation section reports.

    Attributes
    ----------
    extraction:
        Table III (fit errors per device and region).
    ppa:
        Figure 5(a)/(b)/(c) data across cells and variants.
    areas:
        The standalone area report (substrate-area discussion).
    manifest:
        The engine run manifest (per-task wall time, cache hit/miss,
        worker id); ``None`` only for hand-assembled results.
    """

    extraction: ExtractionReport
    ppa: PpaComparison
    areas: AreaReport
    manifest: Optional[RunManifest] = None

    def headline(self) -> dict:
        """The abstract's headline claims, measured."""
        return {
            "max_extraction_error_percent": self.extraction.max_error(),
            "area_reduction_2ch_percent":
                -self.ppa.average_change_percent(DeviceVariant.MIV_2CH,
                                                 "area"),
            "pdp_reduction_2ch_percent":
                -self.ppa.average_change_percent(DeviceVariant.MIV_2CH,
                                                 "pdp"),
            "delay_change_1ch_percent":
                self.ppa.average_change_percent(DeviceVariant.MIV_1CH,
                                                "delay"),
        }


def _resolve_engine(engine: Optional[Engine],
                    max_workers: Optional[int]) -> Engine:
    """Pick the engine: explicit > width override > process default.

    A width override still shares the default engine's artifact cache,
    so serial and parallel runs in one process reuse each other's work.
    """
    if engine is not None:
        return engine
    if max_workers is not None:
        warn_deprecated(
            "max_workers= is deprecated and will be removed in 1.3; pass "
            "engine=Engine(backend='pool:N') instead", stacklevel=4)
        return Engine(backend=backend_for_workers(max_workers),
                      cache=default_engine().cache)
    return default_engine()


def run_extractions(*args,
                    variants: Optional[List[ChannelCount]] = None,
                    process: Optional[ProcessParameters] = None,
                    engine: Optional[Engine] = None,
                    observe=None,
                    max_workers: Optional[int] = None) -> ExtractionReport:
    """Extract compact models for every (variant, polarity) pair.

    All (variant, polarity) extractions are independent, so a parallel
    engine characterises and fits them concurrently.  ``observe``
    scopes a tracer to this call (see :mod:`repro.observe`).

    .. deprecated:: 1.2
       Positional arguments and ``max_workers=`` warn; pass keywords
       and ``engine=Engine(max_workers=...)``.
    """
    kwargs = absorb_positional(
        "run_extractions", args,
        ("variants", "process", "engine", "max_workers"),
        {"variants": variants, "process": process, "engine": engine,
         "max_workers": max_workers})
    variants = kwargs["variants"] or list(ChannelCount)
    engine = _resolve_engine(kwargs["engine"], kwargs["max_workers"])
    pairs = [extraction_tasks(variant, polarity, kwargs["process"])
             for variant in variants
             for polarity in (Polarity.NMOS, Polarity.PMOS)]
    with maybe_activate(observe):
        run = engine.run(merge_tasks(*[support for _, support in pairs]))
    return ExtractionReport([run[task.id] for task, _ in pairs])


def build_flow_graph(cells: List[str],
                     cell_variants: List[DeviceVariant],
                     channel_variants: List[ChannelCount],
                     process: Optional[ProcessParameters] = None,
                     parasitics: Optional[Parasitics] = None,
                     dt: float = DEFAULT_DT):
    """Assemble the full-pipeline task graph.

    Returns ``(graph, extraction_pairs, ppa_pairs)`` — the merged task
    list plus the (result task, support tasks) pairs needed to pick the
    report artefacts back out of a run.  Shared by :func:`run_full_flow`
    and the durable flow runner so a resumed run rebuilds the *same*
    graph (hence the same content-addressed fingerprints) from the
    journalled parameters.
    """
    extraction_pairs = [extraction_tasks(variant, polarity, process)
                        for variant in channel_variants
                        for polarity in (Polarity.NMOS, Polarity.PMOS)]
    ppa_pairs = [cell_ppa_tasks(cell, variant, parasitics, dt, process)
                 for cell in cells for variant in cell_variants]
    graph = merge_tasks(*[support for _, support in extraction_pairs],
                        *[support for _, support in ppa_pairs])
    return graph, extraction_pairs, ppa_pairs


def assemble_flow_result(run, extraction_pairs, ppa_pairs) -> FullFlowResult:
    """Pick the report artefacts out of a completed engine run."""
    extraction = ExtractionReport(
        [run[task.id] for task, _ in extraction_pairs])
    results = [run[task.id] for task, _ in ppa_pairs]
    return FullFlowResult(
        extraction=extraction,
        ppa=PpaComparison.from_results(results),
        areas=build_area_report(),
        manifest=run.manifest,
    )


def run_full_flow(*args,
                  cells: Optional[List[str]] = None,
                  variants: Optional[List[DeviceVariant]] = None,
                  extraction_variants: Optional[List[ChannelCount]] = None,
                  process: Optional[ProcessParameters] = None,
                  parasitics: Optional[Parasitics] = None,
                  dt: float = DEFAULT_DT,
                  engine: Optional[Engine] = None,
                  observe=None,
                  journal=None,
                  cancellation=None,
                  cell_names: Optional[List[str]] = None,
                  max_workers: Optional[int] = None) -> FullFlowResult:
    """Run the whole pipeline as one engine task graph.

    ``cells`` defaults to all 14 cells (several minutes of cold serial
    simulation); pass a subset for a faster run.  Results are
    bit-identical across engine widths, only the wall time and the
    manifest's worker ids differ.  ``observe`` scopes a tracer to this
    call (see :mod:`repro.observe`).

    ``journal`` / ``cancellation`` make the run durable and gracefully
    interruptible (see :mod:`repro.engine.durability`); most callers
    should use :func:`repro.flows.run_durable_flow`, which manages
    both plus the run directory.

    .. deprecated:: 1.2
       Positional arguments, ``cell_names=`` and ``max_workers=`` warn;
       use ``cells=`` and ``engine=Engine(max_workers=...)``.
    """
    cells = absorb_renamed("run_full_flow", "cell_names", cell_names,
                           "cells", cells)
    kwargs = absorb_positional(
        "run_full_flow", args,
        ("cells", "variants", "extraction_variants", "process",
         "parasitics", "dt", "engine", "max_workers"),
        {"cells": cells, "variants": variants,
         "extraction_variants": extraction_variants, "process": process,
         "parasitics": parasitics, "dt": dt, "engine": engine,
         "max_workers": max_workers})
    cells = kwargs["cells"] or list(CELL_NAMES)
    channel_variants = kwargs["extraction_variants"] or list(ChannelCount)
    cell_variants = kwargs["variants"] or list(DeviceVariant)
    process = kwargs["process"]
    dt = kwargs["dt"] if kwargs["dt"] is not None else DEFAULT_DT
    engine = _resolve_engine(kwargs["engine"], kwargs["max_workers"])

    graph, extraction_pairs, ppa_pairs = build_flow_graph(
        cells, cell_variants, channel_variants, process,
        kwargs["parasitics"], dt)

    # durability keywords are only forwarded when set, so plain calls
    # keep the plain Engine.run(tasks) contract
    run_kwargs = {}
    if journal is not None:
        run_kwargs["journal"] = journal
    if cancellation is not None:
        run_kwargs["cancellation"] = cancellation
    with maybe_activate(observe):
        run = engine.run(graph, **run_kwargs)
    return assemble_flow_result(run, extraction_pairs, ppa_pairs)
