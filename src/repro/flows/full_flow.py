"""The complete paper pipeline in one call.

TCAD characterisation of all eight devices -> staged extraction ->
standard-cell simulation -> PPA comparison + area report.  This is what
the benchmark harness and the end-to-end example drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cells.library import CELL_NAMES
from repro.cells.variants import DeviceVariant
from repro.extraction.flow import ExtractedDevice, ExtractionFlow
from repro.extraction.results import ExtractionReport
from repro.extraction.targets import cached_targets
from repro.geometry.transistor_layout import ChannelCount
from repro.layout.report import AreaReport, build_area_report
from repro.ppa.comparison import PpaComparison
from repro.ppa.runner import PpaRunner
from repro.tcad.device import Polarity


@dataclass
class FullFlowResult:
    """Everything the paper's evaluation section reports.

    Attributes
    ----------
    extraction:
        Table III (fit errors per device and region).
    ppa:
        Figure 5(a)/(b)/(c) data across cells and variants.
    areas:
        The standalone area report (substrate-area discussion).
    """

    extraction: ExtractionReport
    ppa: PpaComparison
    areas: AreaReport

    def headline(self) -> dict:
        """The abstract's headline claims, measured."""
        return {
            "max_extraction_error_percent": self.extraction.max_error(),
            "area_reduction_2ch_percent":
                -self.ppa.average_change_percent(DeviceVariant.MIV_2CH,
                                                 "area"),
            "pdp_reduction_2ch_percent":
                -self.ppa.average_change_percent(DeviceVariant.MIV_2CH,
                                                 "pdp"),
            "delay_change_1ch_percent":
                self.ppa.average_change_percent(DeviceVariant.MIV_1CH,
                                                "delay"),
        }


def run_extractions(variants: Optional[List[ChannelCount]] = None,
                    ) -> ExtractionReport:
    """Extract compact models for every (variant, polarity) pair."""
    variants = variants or list(ChannelCount)
    flow = ExtractionFlow()
    devices: List[ExtractedDevice] = []
    for variant in variants:
        for polarity in (Polarity.NMOS, Polarity.PMOS):
            targets = cached_targets(variant, polarity)
            devices.append(flow.run(targets))
    return ExtractionReport(devices)


def run_full_flow(cell_names: Optional[List[str]] = None,
                  variants: Optional[List[DeviceVariant]] = None,
                  ) -> FullFlowResult:
    """Run the whole pipeline.

    ``cell_names`` defaults to all 14 cells (several minutes of
    simulation); pass a subset for a faster run.
    """
    cells = cell_names or list(CELL_NAMES)
    extraction = run_extractions()
    runner = PpaRunner()
    results = runner.sweep(cell_names=cells, variants=variants)
    return FullFlowResult(
        extraction=extraction,
        ppa=PpaComparison.from_results(results),
        areas=build_area_report(),
    )
