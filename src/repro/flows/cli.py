"""``python -m repro.flows`` — durable pipeline runs from the shell.

Subcommands
-----------
``run``
    Start a durable full-pipeline run (journalled, resumable).
``resume <run_id>``
    Continue an interrupted run from its journal.
``list``
    Show journalled runs under the cache directory.

``--resume <run_id>`` at top level is an alias for ``resume``, so an
auto-resume wrapper only needs to re-invoke with one flag.

Exit codes
----------
``0``   run completed.
``1``   run failed (task errors, unusable journal...).
``2``   usage error (bad arguments).
``75``  run interrupted by SIGINT/SIGTERM but resumable
        (``EX_TEMPFAIL`` — re-invoke with ``--resume <run_id>``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cells.library import CELL_NAMES
from repro.cells.variants import DeviceVariant
from repro.engine import Engine
from repro.engine.durability import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    list_runs,
)
from repro.engine.cache import resolve_cache_dir
from repro.errors import ReproError, RunInterrupted
from repro.flows.durable import DurableFlowRun, resume_run, run_durable_flow
from repro.geometry.transistor_layout import ChannelCount
from repro.ppa.runner import DEFAULT_DT


def _parse_cells(text: str) -> List[str]:
    cells = [c.strip() for c in text.split(",") if c.strip()]
    unknown = [c for c in cells if c not in CELL_NAMES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown cell(s) {', '.join(unknown)} "
            f"(choose from {', '.join(CELL_NAMES)})")
    return cells


def _parse_variants(text: str) -> List[DeviceVariant]:
    try:
        return [DeviceVariant(v.strip())
                for v in text.split(",") if v.strip()]
    except ValueError:
        choices = ", ".join(v.value for v in DeviceVariant)
        raise argparse.ArgumentTypeError(
            f"bad variant list {text!r} (choose from {choices})") from None


def _parse_channels(text: str) -> List[ChannelCount]:
    try:
        return [ChannelCount[v.strip().upper()]
                for v in text.split(",") if v.strip()]
    except KeyError:
        choices = ", ".join(v.name for v in ChannelCount)
        raise argparse.ArgumentTypeError(
            f"bad extraction variant list {text!r} "
            f"(choose from {choices})") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flows",
        description="Durable (journalled, resumable) pipeline runs.")
    parser.add_argument("--resume", metavar="RUN_ID", default=None,
                        help="alias for the 'resume' subcommand")
    sub = parser.add_subparsers(dest="command")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="cache directory (default REPRO_CACHE_DIR)")
        p.add_argument("--workers", type=int, default=None,
                       help="engine width (default REPRO_MAX_WORKERS)")
        p.add_argument("--backend", default=None,
                       help="execution backend: serial, pool, pool:N or "
                            "workqueue (default REPRO_BACKEND); "
                            "'workqueue' lets several invocations "
                            "sharing one cache drain the same run")
        p.add_argument("--grace", type=float, default=None,
                       help="shutdown drain window in seconds "
                            "(default REPRO_SHUTDOWN_GRACE)")
        p.add_argument("--remote-cache", metavar="URL", default=None,
                       help="remote artifact cache endpoint, e.g. "
                            "http://host:port of a 'python -m "
                            "repro.cachesrv' (default "
                            "REPRO_REMOTE_CACHE; failures degrade to "
                            "local-only, never fail the run)")
        p.add_argument("--json", action="store_true",
                       help="print a JSON summary instead of text")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the per-stage manifest table")

    run_p = sub.add_parser("run", help="start a durable run")
    run_p.add_argument("--cells", type=_parse_cells, default=None,
                       help="comma-separated cell names (default: all)")
    run_p.add_argument("--variants", type=_parse_variants, default=None,
                       help="comma-separated device variants "
                            "(2D,1-ch,2-ch,4-ch; default: all)")
    run_p.add_argument("--extraction-variants", type=_parse_channels,
                       default=None,
                       help="comma-separated channel counts "
                            "(TRADITIONAL,ONE,TWO,FOUR; default: all)")
    run_p.add_argument("--dt", type=float, default=DEFAULT_DT,
                       help="transient timestep [s]")
    run_p.add_argument("--run-id", default=None,
                       help="explicit run id (also how a run resumes "
                            "itself)")
    common(run_p)

    resume_p = sub.add_parser("resume", help="continue an interrupted run")
    resume_p.add_argument("run_id", help="the run to continue")
    common(resume_p)

    list_p = sub.add_parser("list", help="show journalled runs")
    list_p.add_argument("--cache-dir", default=None)
    list_p.add_argument("--json", action="store_true")
    return parser


def _report(run: DurableFlowRun, as_json: bool, quiet: bool,
            engine: Optional[Engine] = None) -> None:
    cache_stats = (engine.cache.stats()
                   if engine is not None else None)
    if as_json:
        # the headline claims compare against the MIV variants, which
        # a reduced flow may not include — that is not an error
        try:
            headline = run.result.headline()
        except ReproError:
            headline = None
        payload = {
            "run_id": run.run_id,
            "status": run.result.manifest.status,
            "resumed": run.resumed,
            "run_dir": str(run.run_dir),
            "headline": headline,
            "summary": run.result.manifest.summary(),
        }
        if cache_stats is not None:
            payload["cache"] = cache_stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(f"run {run.run_id}: completed"
          + (f" (resume #{run.resumed})" if run.resumed else ""))
    if cache_stats is not None and "remote" in cache_stats:
        remote = cache_stats["remote"]
        print(f"remote cache: hits={cache_stats['hits_remote']} "
              f"stores={remote['stores']} errors={remote['errors']} "
              f"degraded={remote['degraded']}")
    if not quiet and run.result.manifest is not None:
        print(run.result.manifest.render())


def _cmd_list(args) -> int:
    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        print("no cache directory configured (set REPRO_CACHE_DIR "
              "or pass --cache-dir)", file=sys.stderr)
        return EXIT_USAGE
    runs = list_runs(cache_dir)
    if args.json:
        print(json.dumps(runs, indent=2, sort_keys=True))
        return EXIT_OK
    if not runs:
        print(f"no journalled runs under {cache_dir}")
        return EXIT_OK
    for entry in runs:
        flags = []
        if entry["active"]:
            flags.append("active")
        if entry["resumes"]:
            flags.append(f"resumed x{entry['resumes']}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(f"{entry['run_id']}  {entry['status']:<12} "
              f"{entry['tasks_done']} done{suffix}")
    return EXIT_OK


def _engine_for(args) -> Optional[Engine]:
    remote = getattr(args, "remote_cache", None)
    if (args.cache_dir is None and args.workers is None
            and args.backend is None and remote is None):
        return None
    backend = args.backend
    if backend is None and args.workers is not None:
        backend = ("serial" if args.workers == 1
                   else f"pool:{args.workers}")
    elif backend == "pool" and args.workers is not None:
        backend = f"pool:{args.workers}"
    return Engine(backend=backend, cache_dir=args.cache_dir,
                  remote=remote)


def _rewrite_resume_alias(argv: List[str]) -> List[str]:
    """``--resume RUN_ID [opts...]`` -> ``resume RUN_ID [opts...]``.

    Rewritten before parsing so the remaining options survive the
    aliasing (a post-parse re-parse would silently drop them).
    """
    for i, token in enumerate(argv):
        if token in ("run", "resume", "list"):
            return argv
        if token == "--resume" and i + 1 < len(argv):
            return (["resume", argv[i + 1]]
                    + argv[:i] + argv[i + 2:])
        if token.startswith("--resume="):
            return (["resume", token.split("=", 1)[1]]
                    + argv[:i] + argv[i + 1:])
    return argv


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = parser.parse_args(_rewrite_resume_alias(argv))
    if args.command is None:
        parser.print_help(sys.stderr)
        return EXIT_USAGE

    if args.command == "list":
        return _cmd_list(args)

    engine = _engine_for(args)
    try:
        if args.command == "run":
            run = run_durable_flow(
                cells=args.cells, variants=args.variants,
                extraction_variants=args.extraction_variants,
                dt=args.dt, engine=engine,
                run_id=args.run_id, grace=args.grace)
        else:
            run = resume_run(args.run_id, engine=engine,
                             grace=args.grace)
    except RunInterrupted as exc:
        print(f"run {exc.run_id} interrupted; resume with:\n"
              f"  python -m repro.flows --resume {exc.run_id}",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE

    _report(run, args.json, args.quiet, engine=engine)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised by __main__
    sys.exit(main())
