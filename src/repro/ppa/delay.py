"""Delay measurement over a cell's stimulus plan."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cells.netlist_builder import CellNetlist
from repro.cells.vectors import StimulusRun
from repro.errors import SimulationError
from repro.spice import measure
from repro.spice.transient import TransientResult

#: Time allowed for the circuit to settle before the first edge [s].
SETTLE_TIME = 1.0e-10


def run_delays(netlist: CellNetlist, run: StimulusRun,
               result: TransientResult) -> List[float]:
    """Propagation delays [s] of one transient run (both edges)."""
    in_node = f"in_{run.toggled_input}"
    in_wf = result.waveform(in_node)
    out_wf = result.waveform(netlist.output_node)
    measurements = measure.propagation_delays(
        in_wf, out_wf, netlist.vdd, settle=SETTLE_TIME)
    return [m.delay for m in measurements]


def measure_cell_delay(netlist: CellNetlist,
                       results: Dict[str, Tuple[StimulusRun,
                                                TransientResult]]) -> float:
    """Average propagation delay [s] over every run and edge.

    ``results`` maps toggled-input name to its (run, transient) pair.
    """
    delays: List[float] = []
    for run, result in results.values():
        delays.extend(run_delays(netlist, run, result))
    if not delays:
        raise SimulationError(
            f"{netlist.spec.name}: no output transitions measured")
    return sum(delays) / len(delays)
