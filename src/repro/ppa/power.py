"""Average supply power over a cell's stimulus plan."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cells.netlist_builder import CellNetlist
from repro.cells.vectors import StimulusRun
from repro.errors import SimulationError
from repro.spice import measure
from repro.spice.transient import TransientResult


def run_power(netlist: CellNetlist, run: StimulusRun,
              result: TransientResult) -> float:
    """Average power [W] of one run over a full activity window.

    The window spans from just before the rising edge to one pulse width
    past the falling edge, covering both output transitions plus the
    static intervals between them.
    """
    t0 = run.delay / 2.0
    t1 = min(run.delay + 2.0 * run.width, result.times[-1])
    return measure.average_power(result.current(netlist.vdd_source),
                                 netlist.vdd, t0, t1)


def measure_cell_power(netlist: CellNetlist,
                       results: Dict[str, Tuple[StimulusRun,
                                                TransientResult]]) -> float:
    """Average power [W] over all runs of the plan."""
    if not results:
        raise SimulationError(f"{netlist.spec.name}: no runs to average")
    powers = [run_power(netlist, run, result)
              for run, result in results.values()]
    return sum(powers) / len(powers)
