"""Area metric plumbing for the PPA runner."""

from __future__ import annotations

from typing import Optional

from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant
from repro.layout.cell_layout import CellAreaModel

_DEFAULT_MODEL: Optional[CellAreaModel] = None


def _model() -> CellAreaModel:
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = CellAreaModel()
    return _DEFAULT_MODEL


def cell_area(spec: CellSpec, variant: DeviceVariant,
              model: Optional[CellAreaModel] = None) -> float:
    """Figure 5(c) cell area [m^2] of one implementation."""
    return (model or _model()).layout(spec, variant).cell_area


def substrate_area(spec: CellSpec, variant: DeviceVariant,
                   model: Optional[CellAreaModel] = None) -> float:
    """Total substrate (sum-of-layers) area [m^2]."""
    return (model or _model()).layout(spec, variant).substrate_area
