"""Percent comparisons against the 2-D baseline (the Figure 5 numbers)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.cells.variants import DeviceVariant
from repro.errors import SimulationError
from repro.ppa.runner import CellPPA

#: Metrics the comparison understands.
METRICS = ("delay", "power", "area", "pdp", "substrate")


@dataclass(frozen=True)
class PpaComparison:
    """Indexes a collection of :class:`CellPPA` and derives reductions."""

    results: Dict[str, Dict[DeviceVariant, CellPPA]]

    @classmethod
    def from_results(cls, results: Iterable[CellPPA]) -> "PpaComparison":
        """Group a flat result list by cell then variant."""
        indexed: Dict[str, Dict[DeviceVariant, CellPPA]] = {}
        for item in results:
            indexed.setdefault(item.cell_name, {})[item.variant] = item
        if not indexed:
            raise SimulationError("no PPA results to compare")
        return cls(indexed)

    @property
    def cell_names(self) -> List[str]:
        """Cells present, sorted."""
        return sorted(self.results)

    def value(self, cell: str, variant: DeviceVariant, metric: str) -> float:
        """Raw metric value."""
        if metric not in METRICS:
            raise SimulationError(f"unknown metric {metric!r}")
        try:
            return getattr(self.results[cell][variant], metric)
        except KeyError:
            raise SimulationError(
                f"missing result for {cell} / {variant.value}") from None

    def change_percent(self, cell: str, variant: DeviceVariant,
                       metric: str) -> float:
        """Percent change vs the 2-D baseline (negative = reduction)."""
        base = self.value(cell, DeviceVariant.TWO_D, metric)
        cand = self.value(cell, variant, metric)
        if base == 0:
            raise SimulationError(f"zero baseline for {cell}/{metric}")
        return 100.0 * (cand / base - 1.0)

    def average_change_percent(self, variant: DeviceVariant,
                               metric: str) -> float:
        """Library-average percent change vs 2-D."""
        changes = [self.change_percent(c, variant, metric)
                   for c in self.cell_names]
        return sum(changes) / len(changes)

    def extreme_change_percent(self, variant: DeviceVariant,
                               metric: str, best: bool = True) -> float:
        """Most negative (best) or most positive (worst) change."""
        changes = [self.change_percent(c, variant, metric)
                   for c in self.cell_names]
        return min(changes) if best else max(changes)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_metric(self, metric: str, scale: float = 1.0,
                      unit: str = "") -> str:
        """Per-cell table of one metric across implementations."""
        order = (DeviceVariant.TWO_D, DeviceVariant.MIV_1CH,
                 DeviceVariant.MIV_2CH, DeviceVariant.MIV_4CH)
        lines = ["\t".join(["Cell"] + [v.value for v in order] +
                           [f"({unit})" if unit else ""])]
        for cell in self.cell_names:
            row = [cell]
            for variant in order:
                row.append(f"{self.value(cell, variant, metric) * scale:.4g}")
            lines.append("\t".join(row))
        avg = ["avg vs 2D", "-"]
        for variant in order[1:]:
            avg.append(f"{self.average_change_percent(variant, metric):+.1f}%")
        lines.append("\t".join(avg))
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """The paper's headline numbers, as percent changes vs 2-D."""
        out: Dict[str, float] = {}
        for variant in (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                        DeviceVariant.MIV_4CH):
            for metric in ("delay", "power", "area", "pdp"):
                key = f"{variant.value}:{metric}"
                out[key] = self.average_change_percent(variant, metric)
        return out
