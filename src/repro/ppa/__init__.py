"""Power-Performance-Area evaluation harness (Figure 5).

Runs the sensitised stimulus plan of every cell through the circuit
simulator, measures average propagation delay and average supply power,
computes the layout area, and compares each MIV-transistor implementation
against the two-layer 2-D FDSOI baseline.
"""

from repro.ppa.delay import measure_cell_delay
from repro.ppa.power import measure_cell_power
from repro.ppa.area import cell_area
from repro.ppa.runner import CellPPA, PpaRunner, simulate_cell
from repro.ppa.comparison import PpaComparison

__all__ = [
    "measure_cell_delay",
    "measure_cell_power",
    "cell_area",
    "CellPPA",
    "PpaRunner",
    "simulate_cell",
    "PpaComparison",
]
