"""The full cells x variants PPA sweep."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cells.library import all_cells
from repro.cells.netlist_builder import (
    CellNetlist,
    Parasitics,
    build_cell_circuit,
)
from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant, ModelSet, extracted_model_set
from repro.cells.vectors import StimulusRun, stimulus_plan_for
from repro.deprecation import absorb_positional, absorb_renamed, \
    warn_deprecated
from repro.observe import get_tracer, maybe_activate
from repro.spice.elements.vsource import PulseSpec
from repro.spice.transient import TransientResult, transient

#: Base (coarse) transient step [s]; edges are auto-refined 20x.
DEFAULT_DT = 2.0e-11


@dataclass(frozen=True)
class CellPPA:
    """PPA numbers of one (cell, variant) implementation."""

    cell_name: str
    variant: DeviceVariant
    delay: float          # s
    power: float          # W
    area: float           # m^2
    substrate: float      # m^2

    @property
    def pdp(self) -> float:
        """Power-delay product [J]."""
        return self.power * self.delay

    def to_dict(self) -> Dict:
        """JSON-compatible representation (for on-disk caching)."""
        return {
            "cell_name": self.cell_name,
            "variant": self.variant.value,
            "delay": self.delay,
            "power": self.power,
            "area": self.area,
            "substrate": self.substrate,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CellPPA":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cell_name=data["cell_name"],
            variant=DeviceVariant(data["variant"]),
            delay=data["delay"],
            power=data["power"],
            area=data["area"],
            substrate=data["substrate"],
        )


def simulate_cell(spec: CellSpec, variant: DeviceVariant,
                  parasitics: Parasitics = Parasitics(),
                  dt: float = DEFAULT_DT,
                  models: Optional[ModelSet] = None,
                  ) -> Tuple[CellNetlist,
                             Dict[str, Tuple[StimulusRun, TransientResult]]]:
    """Run the sensitised stimulus plan of one cell implementation.

    Returns the netlist and, per toggled input, its (run, transient).
    ``models`` short-circuits the extraction chain when the caller (the
    engine's ``cell_ppa`` stage) already holds the variant's model set.
    """
    if models is None:
        models = extracted_model_set(variant)
    netlist = build_cell_circuit(spec, models, parasitics)
    plan = stimulus_plan_for(spec)

    results: Dict[str, Tuple[StimulusRun, TransientResult]] = {}
    with get_tracer().span("ppa.simulate_cell", cell=spec.name,
                           variant=variant.value, runs=len(plan.runs)):
        for run in plan.runs:
            _configure_sources(netlist, run)
            record = [f"in_{run.toggled_input}", netlist.output_node]
            result = transient(netlist.circuit, t_stop=run.t_stop, dt=dt,
                               method="trap", record_nodes=record)
            results[run.toggled_input] = (run, result)
    return netlist, results


def _configure_sources(netlist: CellNetlist, run: StimulusRun) -> None:
    """Point each input source at the run's stimulus."""
    vdd = netlist.vdd
    for input_name, source_name in netlist.input_sources.items():
        source = netlist.circuit.element(source_name)
        if input_name == run.toggled_input:
            source.waveform = PulseSpec(**run.pulse_kwargs(vdd))
        else:
            level = run.static_levels.get(input_name, False)
            source.waveform = vdd if level else 0.0


class PpaRunner:
    """Engine-backed PPA evaluation across the cells x variants grid.

    Engine-first (1.2 API): construct it around the :class:`Engine` that
    should produce and cache the artefacts::

        from repro.engine import Engine, default_engine
        runner = PpaRunner(engine=default_engine())
        results = runner.sweep(cells=["INV1X1"], variants=None)

    Results are content-addressed on the full request — (cell, variant,
    parasitics, dt, process) — so one runner instance can be reused
    across parasitic or timestep sweeps without ever returning numbers
    computed under different conditions, and two runners with equal
    settings share artefacts through the engine cache.

    ``observe`` scopes a tracer to this runner's work (see
    :mod:`repro.observe`); ``None`` inherits the ambient/env default.

    .. deprecated:: 1.2
       Positional constructor arguments and engine-less ``PpaRunner()``
       warn and will be removed in 1.3.
    """

    def __init__(self, *args, parasitics: Optional[Parasitics] = None,
                 dt: float = DEFAULT_DT, process=None, engine=None,
                 observe=None):
        kwargs = absorb_positional(
            "PpaRunner", args, ("parasitics", "dt", "process", "engine"),
            {"parasitics": parasitics, "dt": dt, "process": process,
             "engine": engine})
        if kwargs["engine"] is None:
            warn_deprecated(
                "engine-less PpaRunner() is deprecated and will be removed "
                "in 1.3; pass engine= explicitly (e.g. "
                "PpaRunner(engine=repro.engine.default_engine()))")
        self.parasitics = (kwargs["parasitics"]
                           if kwargs["parasitics"] is not None
                           else Parasitics())
        self.dt = kwargs["dt"] if kwargs["dt"] is not None else DEFAULT_DT
        self.process = kwargs["process"]
        self.engine = kwargs["engine"]
        self.observe = observe

    def _engine(self):
        from repro.engine import default_engine
        return self.engine or default_engine()

    def evaluate(self, cell_name: str, variant: DeviceVariant) -> CellPPA:
        """PPA of one (cell, variant) pair (cached in the engine)."""
        from repro.engine.pipeline import cell_ppa
        with maybe_activate(self.observe):
            return cell_ppa(cell_name, variant, self.parasitics, self.dt,
                            self.process, engine=self._engine())

    def sweep(self, *args, cells: Optional[List[str]] = None,
              variants: Optional[List[DeviceVariant]] = None,
              cell_names: Optional[List[str]] = None) -> List[CellPPA]:
        """Evaluate a grid of cells and variants.

        The whole grid is submitted as one task graph, so with a
        parallel engine the independent (cell, variant) transients fan
        out across workers as their shared model sets complete.

        .. deprecated:: 1.2
           Positional arguments and ``cell_names=`` warn; use
           ``cells=`` / ``variants=`` keywords.
        """
        from repro.engine.pipeline import cell_ppa_tasks, merge_tasks
        cells = absorb_renamed("PpaRunner.sweep", "cell_names",
                               cell_names, "cells", cells)
        kwargs = absorb_positional(
            "PpaRunner.sweep", args, ("cells", "variants"),
            {"cells": cells, "variants": variants})
        variants = kwargs["variants"] or list(DeviceVariant)
        names = kwargs["cells"] or [c.name for c in all_cells()]
        grid = [cell_ppa_tasks(name, variant, self.parasitics, self.dt,
                               self.process)
                for name in names for variant in variants]
        with maybe_activate(self.observe):
            run = self._engine().run(
                merge_tasks(*[tasks for _, tasks in grid]))
        return [run[task.id] for task, _ in grid]
