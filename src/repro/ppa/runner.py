"""The full cells x variants PPA sweep."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cells.library import all_cells, get_cell
from repro.cells.netlist_builder import (
    CellNetlist,
    Parasitics,
    build_cell_circuit,
)
from repro.cells.spec import CellSpec
from repro.cells.variants import DeviceVariant, extracted_model_set
from repro.cells.vectors import StimulusRun, stimulus_plan_for
from repro.ppa.area import cell_area, substrate_area
from repro.ppa.delay import measure_cell_delay
from repro.ppa.power import measure_cell_power
from repro.spice.elements.vsource import PulseSpec
from repro.spice.transient import TransientResult, transient

#: Base (coarse) transient step [s]; edges are auto-refined 20x.
DEFAULT_DT = 2.0e-11


@dataclass(frozen=True)
class CellPPA:
    """PPA numbers of one (cell, variant) implementation."""

    cell_name: str
    variant: DeviceVariant
    delay: float          # s
    power: float          # W
    area: float           # m^2
    substrate: float      # m^2

    @property
    def pdp(self) -> float:
        """Power-delay product [J]."""
        return self.power * self.delay


def simulate_cell(spec: CellSpec, variant: DeviceVariant,
                  parasitics: Parasitics = Parasitics(),
                  dt: float = DEFAULT_DT,
                  ) -> Tuple[CellNetlist,
                             Dict[str, Tuple[StimulusRun, TransientResult]]]:
    """Run the sensitised stimulus plan of one cell implementation.

    Returns the netlist and, per toggled input, its (run, transient).
    """
    models = extracted_model_set(variant)
    netlist = build_cell_circuit(spec, models, parasitics)
    plan = stimulus_plan_for(spec)

    results: Dict[str, Tuple[StimulusRun, TransientResult]] = {}
    for run in plan.runs:
        _configure_sources(netlist, run)
        record = [f"in_{run.toggled_input}", netlist.output_node]
        result = transient(netlist.circuit, t_stop=run.t_stop, dt=dt,
                           method="trap", record_nodes=record)
        results[run.toggled_input] = (run, result)
    return netlist, results


def _configure_sources(netlist: CellNetlist, run: StimulusRun) -> None:
    """Point each input source at the run's stimulus."""
    vdd = netlist.vdd
    for input_name, source_name in netlist.input_sources.items():
        source = netlist.circuit.element(source_name)
        if input_name == run.toggled_input:
            source.waveform = PulseSpec(**run.pulse_kwargs(vdd))
        else:
            level = run.static_levels.get(input_name, False)
            source.waveform = vdd if level else 0.0


class PpaRunner:
    """Caches PPA results across the cells x variants grid."""

    def __init__(self, parasitics: Parasitics = Parasitics(),
                 dt: float = DEFAULT_DT):
        self.parasitics = parasitics
        self.dt = dt
        self._cache: Dict[Tuple[str, DeviceVariant], CellPPA] = {}

    def evaluate(self, cell_name: str, variant: DeviceVariant) -> CellPPA:
        """PPA of one (cell, variant) pair (cached)."""
        key = (cell_name, variant)
        if key not in self._cache:
            spec = get_cell(cell_name)
            netlist, results = simulate_cell(spec, variant,
                                             self.parasitics, self.dt)
            self._cache[key] = CellPPA(
                cell_name=cell_name,
                variant=variant,
                delay=measure_cell_delay(netlist, results),
                power=measure_cell_power(netlist, results),
                area=cell_area(spec, variant),
                substrate=substrate_area(spec, variant),
            )
        return self._cache[key]

    def sweep(self, cell_names: Optional[List[str]] = None,
              variants: Optional[List[DeviceVariant]] = None,
              ) -> List[CellPPA]:
        """Evaluate a grid of cells and variants."""
        names = cell_names or [c.name for c in all_cells()]
        variants = variants or list(DeviceVariant)
        return [self.evaluate(name, variant)
                for name in names for variant in variants]
