"""Span tracer with contextvars propagation and a no-op disabled mode.

A :class:`Tracer` records *spans* (named, nested durations with
attributes) and *events* (instant points), and owns a
:class:`~repro.observe.metrics.MetricsRegistry`.  The current span is
carried in a :class:`contextvars.ContextVar`, so nesting follows the
call stack — including through generators and context managers —
without any explicit parent plumbing.

Cross-process nesting works by *export and merge*: a pool worker runs
its task under a fresh tracer, ships the recorded spans and a metrics
snapshot back with the task result, and the parent re-roots them under
the task's parent-side span (see ``repro.engine.scheduler``).  Span ids
are ``"<pid>-<seq>"`` strings, so ids from different workers can never
collide in the merged stream.

When tracing is off, every instrumentation site costs one
``get_tracer()`` (a ContextVar read) plus an attribute check — the
:data:`NULL_TRACER` singleton allocates nothing and records nothing.
"""

from __future__ import annotations

import json
import logging
import os
import time
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.observe.metrics import (
    ITERATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Enables tracing process-wide.  ``1``/``true``/``yes``/``on`` enable
#: in-memory tracing; any other non-empty value is treated as an output
#: directory that engine runs export trace files into.
TRACE_ENV = "REPRO_TRACE"

#: Log level of the ``repro`` logger (``DEBUG``, ``INFO``, ...); when
#: set, a JSON-lines handler is installed on first observe use.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_TRUE_VALUES = ("1", "true", "yes", "on")
_FALSE_VALUES = ("", "0", "false", "no", "off")

logger = logging.getLogger("repro.observe")


class _JsonLineFormatter(logging.Formatter):
    """One JSON object per log record (machine-greppable logs)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "t": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        return json.dumps(payload, sort_keys=True)


_LOGGING_CONFIGURED = False


def configure_logging(level: Optional[str] = None) -> None:
    """Install the JSON-lines handler on the ``repro`` logger.

    ``level`` defaults to ``REPRO_LOG_LEVEL``; no-op when neither is
    set.  Idempotent: repeated calls only adjust the level.
    """
    global _LOGGING_CONFIGURED
    level = level if level is not None else os.environ.get(LOG_LEVEL_ENV)
    if not level:
        return
    root = logging.getLogger("repro")
    root.setLevel(level.upper())
    if not _LOGGING_CONFIGURED:
        handler = logging.StreamHandler()
        handler.setFormatter(_JsonLineFormatter())
        root.addHandler(handler)
        _LOGGING_CONFIGURED = True


class Span:
    """One named duration; use as a context manager.

    ``set(key=value, ...)`` attaches attributes (Newton iterations,
    residuals, cache layer...) that end up in the exported ``args``.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attrs",
                 "ts", "_start", "duration", "_token")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: Optional[str], attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.ts = 0.0          # epoch seconds at __enter__
        self._start = 0.0      # perf_counter at __enter__
        self.duration = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.ts = time.time()
        self._start = time.perf_counter()
        self._token = _CURRENT_SPAN.set(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._record_span(self)


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _NullInstrument:
    """Absorbs counter/gauge/histogram calls when tracing is off."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def add(self, delta: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op."""

    enabled = False
    out_dir: Optional[Path] = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, edges=ITERATION_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT


#: The process-wide disabled tracer (singleton — identity-comparable).
NULL_TRACER = NullTracer()

#: Current span id (contextvars: follows the logical call context).
_CURRENT_SPAN: ContextVar[Optional[str]] = ContextVar(
    "repro_observe_current_span", default=None)

#: Context-local active tracer override (set by ``activate``).
_ACTIVE_TRACER: ContextVar[Optional[Union["Tracer", NullTracer]]] = \
    ContextVar("repro_observe_active_tracer", default=None)


class Tracer:
    """Recording tracer: spans, instant events and metrics.

    Parameters
    ----------
    out_dir:
        When set, engine runs export ``trace.json`` (Chrome trace),
        ``events.jsonl`` and ``summary.txt`` here after each run.
    """

    enabled = True

    def __init__(self, out_dir: Optional[os.PathLike] = None):
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.metrics = MetricsRegistry()
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self._pid = os.getpid()
        self._seq = 0

    # ------------------------------------------------------------------
    # spans and events
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        self._seq += 1
        return f"{self._pid}-{self._seq}"

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, self._next_id(), _CURRENT_SPAN.get(), attrs)

    def _record_span(self, span: Span) -> None:
        self.spans.append({
            "kind": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "ts": span.ts,
            "dur": span.duration,
            "pid": self._pid,
            "args": span.attrs,
        })
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("span %s dur=%.6fs %s",
                         span.name, span.duration, span.attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append({
            "kind": "event",
            "name": name,
            "parent": _CURRENT_SPAN.get(),
            "ts": time.time(),
            "pid": self._pid,
            "args": attrs,
        })

    # ------------------------------------------------------------------
    # metrics passthrough
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str,
                  edges=ITERATION_BUCKETS) -> Histogram:
        return self.metrics.histogram(name, edges)

    # ------------------------------------------------------------------
    # cross-process export / merge
    # ------------------------------------------------------------------
    def export_records(self) -> Dict[str, Any]:
        """Picklable bundle a worker ships back with its task result."""
        return {
            "spans": self.spans,
            "events": self.events,
            "metrics": self.metrics.snapshot(),
        }

    def merge_records(self, records: Dict[str, Any],
                      parent_id: Optional[str] = None) -> None:
        """Fold a worker's :meth:`export_records` into this tracer.

        ``parent_id`` re-roots the worker's top-level spans/events under
        a parent-side span (default: the caller's current span), so the
        merged trace nests correctly.
        """
        if parent_id is None:
            parent_id = _CURRENT_SPAN.get()
        worker_ids = {s["id"] for s in records.get("spans", [])}
        for span in records.get("spans", []):
            if span.get("parent") not in worker_ids:
                span = dict(span, parent=parent_id)
            self.spans.append(span)
        for event in records.get("events", []):
            if event.get("parent") not in worker_ids:
                event = dict(event, parent=parent_id)
            self.events.append(event)
        self.metrics.merge(records.get("metrics", {}))

    # ------------------------------------------------------------------
    # exports (implemented in repro.observe.export)
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        from repro.observe.export import chrome_trace
        return chrome_trace(self)

    def write_chrome_trace(self, path: os.PathLike) -> Path:
        from repro.observe.export import write_chrome_trace
        return write_chrome_trace(self, path)

    def write_jsonl(self, path: os.PathLike) -> Path:
        from repro.observe.export import write_jsonl
        return write_jsonl(self, path)

    def summary(self) -> str:
        from repro.observe.export import summary_table
        return summary_table(self)

    def export_all(self, out_dir: Optional[os.PathLike] = None) -> List[Path]:
        """Write every export format into ``out_dir`` (or ``self.out_dir``)."""
        target = Path(out_dir) if out_dir is not None else self.out_dir
        if target is None:
            return []
        target.mkdir(parents=True, exist_ok=True)
        written = [
            self.write_chrome_trace(target / "trace.json"),
            self.write_jsonl(target / "events.jsonl"),
        ]
        summary_path = target / "summary.txt"
        summary_path.write_text(self.summary() + "\n", encoding="utf-8")
        written.append(summary_path)
        return written


# ----------------------------------------------------------------------
# global / contextual tracer resolution
# ----------------------------------------------------------------------
_GLOBAL_TRACER: Optional[Union[Tracer, NullTracer]] = None


def _tracer_from_env() -> Union[Tracer, NullTracer]:
    value = os.environ.get(TRACE_ENV, "")
    if value.lower() in _FALSE_VALUES:
        return NULL_TRACER
    configure_logging()
    if value.lower() in _TRUE_VALUES:
        return Tracer()
    return Tracer(out_dir=value)


def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer: context-local override, else the env-resolved
    process global, else :data:`NULL_TRACER`."""
    active = _ACTIVE_TRACER.get()
    if active is not None:
        return active
    global _GLOBAL_TRACER
    if _GLOBAL_TRACER is None:
        _GLOBAL_TRACER = _tracer_from_env()
    return _GLOBAL_TRACER


def configure(enabled: bool = True,
              out_dir: Optional[os.PathLike] = None,
              ) -> Union[Tracer, NullTracer]:
    """Install (and return) the process-wide tracer explicitly."""
    global _GLOBAL_TRACER
    configure_logging()
    _GLOBAL_TRACER = Tracer(out_dir=out_dir) if enabled else NULL_TRACER
    return _GLOBAL_TRACER


def reset() -> None:
    """Drop the process-wide tracer (next use re-reads the env vars)."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = None


class activate:
    """Context manager making ``tracer`` the active one in this context.

    Reentrant and contextvars-based, so parallel logical contexts (e.g.
    engine runs under different tracers) do not interfere.
    """

    def __init__(self, tracer: Union[Tracer, NullTracer]):
        self.tracer = tracer

    def __enter__(self) -> Union[Tracer, NullTracer]:
        self._token = _ACTIVE_TRACER.set(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE_TRACER.reset(self._token)


class maybe_activate:
    """Activate ``resolve_tracer(observe)`` unless ``observe`` is None.

    The context manager the public entry points wrap their work in: an
    explicit ``observe=`` argument scopes a tracer to that call, while
    ``observe=None`` leaves whatever tracer is already active (the
    env-controlled default) untouched.
    """

    def __init__(self, observe: Any):
        self.observe = observe
        self._inner: Optional[activate] = None

    def __enter__(self) -> Union[Tracer, NullTracer]:
        if self.observe is None:
            return get_tracer()
        self._inner = activate(resolve_tracer(self.observe))
        return self._inner.__enter__()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._inner is not None:
            self._inner.__exit__(exc_type, exc, tb)


def resolve_tracer(observe: Any) -> Union[Tracer, NullTracer]:
    """Normalise an ``observe=`` argument to a tracer.

    ``None`` -> the currently active tracer (env-controlled default);
    ``True``/``False`` -> a fresh recording tracer / the no-op singleton;
    a str/path -> a recording tracer exporting into that directory;
    a tracer instance passes through.
    """
    if observe is None:
        return get_tracer()
    if isinstance(observe, (Tracer, NullTracer)):
        return observe
    if isinstance(observe, bool):
        if not observe:
            return NULL_TRACER
        configure_logging()
        return Tracer()
    if isinstance(observe, (str, os.PathLike)):
        configure_logging()
        return Tracer(out_dir=observe)
    raise TypeError(f"observe= must be None, bool, path or Tracer, "
                    f"got {type(observe).__name__}")
