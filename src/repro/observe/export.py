"""Trace exports: Chrome trace JSON, JSON-lines events, text summary.

Three consumers, three formats:

* ``chrome_trace`` — a ``chrome://tracing`` / Perfetto-loadable JSON
  object (``traceEvents`` with complete ``"X"`` spans and instant
  ``"i"`` events, microsecond timestamps, one row per process);
* ``write_jsonl`` — every span, event and metric as one JSON object per
  line, in timestamp order, for grep/jq pipelines;
* ``summary_table`` — the human-readable roll-up: per-span-name
  aggregates plus every counter, gauge and histogram.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observe.tracer import Tracer


def chrome_trace(tracer: "Tracer") -> Dict[str, Any]:
    """Render the tracer's records as a Chrome trace object."""
    trace_events: List[Dict[str, Any]] = []
    pids = sorted({r["pid"] for r in tracer.spans + tracer.events})
    for pid in pids:
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro pid {pid}"},
        })
    for span in tracer.spans:
        trace_events.append({
            "name": span["name"],
            "cat": span["name"].split(".")[0],
            "ph": "X",
            "ts": span["ts"] * 1e6,
            "dur": span["dur"] * 1e6,
            "pid": span["pid"],
            "tid": 0,
            "args": span["args"],
        })
    for event in tracer.events:
        trace_events.append({
            "name": event["name"],
            "cat": event["name"].split(".")[0],
            "ph": "i",
            "s": "p",
            "ts": event["ts"] * 1e6,
            "pid": event["pid"],
            "tid": 0,
            "args": event["args"],
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: "Tracer", path: os.PathLike) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle)
    return path


def write_jsonl(tracer: "Tracer", path: os.PathLike) -> Path:
    """Write spans + events (by timestamp) then metrics as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = sorted(tracer.spans + tracer.events, key=lambda r: r["ts"])
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str)
                         + "\n")
        for name, data in tracer.metrics.snapshot().items():
            handle.write(json.dumps({"kind": "metric", "name": name, **data},
                                    sort_keys=True) + "\n")
    return path


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summary_table(tracer: "Tracer") -> str:
    """The plain-text roll-up of one traced run."""
    lines: List[str] = []

    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for span in tracer.spans:
        by_name.setdefault(span["name"], []).append(span)
    if by_name:
        lines.append("spans:")
        lines.append(f"  {'name':<28} {'count':>7} {'total_s':>10} "
                     f"{'mean_s':>10} {'max_s':>10}")
        for name in sorted(by_name):
            durs = [s["dur"] for s in by_name[name]]
            lines.append(
                f"  {name:<28} {len(durs):>7} {sum(durs):>10.4f} "
                f"{sum(durs) / len(durs):>10.4f} {max(durs):>10.4f}")

    snapshot = tracer.metrics.snapshot()
    counters = {n: d for n, d in snapshot.items() if d["type"] == "counter"}
    gauges = {n: d for n, d in snapshot.items() if d["type"] == "gauge"}
    histograms = {n: d for n, d in snapshot.items()
                  if d["type"] == "histogram"}

    if counters:
        lines.append("counters:")
        for name, data in counters.items():
            lines.append(f"  {name:<40} {_format_value(data['value']):>12}")
    if gauges:
        lines.append("gauges:")
        for name, data in gauges.items():
            value = data["value"]
            lines.append(f"  {name:<40} "
                         f"{_format_value(value) if value is not None else '-':>12}")
    if histograms:
        lines.append("histograms:")
        lines.append(f"  {'name':<34} {'count':>8} {'mean':>10} "
                     f"{'min':>10} {'max':>10}")
        for name, data in histograms.items():
            count = data["count"]
            mean = data["total"] / count if count else 0.0
            fmt = lambda v: _format_value(v) if v is not None else "-"
            lines.append(f"  {name:<34} {count:>8} {_format_value(mean):>10} "
                         f"{fmt(data['min']):>10} {fmt(data['max']):>10}")

    if not lines:
        return "(no observations recorded)"
    return "\n".join(lines)
