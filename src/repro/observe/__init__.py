"""Observability: span tracing, metrics and exports for the pipeline.

The layer every hot path reports through:

* **spans** — nested named durations (``tracer.span("engine.run")``),
  propagated via :mod:`contextvars` so nesting follows the call stack
  and survives the engine's process-pool fan-out (workers export their
  spans with each task result; the engine re-roots them in the merged
  trace);
* **metrics** — counters, gauges and fixed-bucket histograms
  (deterministic: bucket edges never depend on the data), merged across
  workers by addition;
* **exports** — a Chrome-trace JSON (``chrome://tracing`` / Perfetto),
  a JSON-lines event log and a plain-text summary table.

Control surface:

* ``REPRO_TRACE`` env var — ``1`` enables tracing; any other non-empty
  value is the export directory engine runs write trace files into;
* ``REPRO_LOG_LEVEL`` env var — level of the ``repro`` logger (JSON-line
  records on stderr);
* ``observe=`` — accepted by :class:`repro.engine.Engine` and every
  public entry point (``quick_ppa``, ``run_full_flow``, ...): ``None``
  inherits the env-controlled default, ``True``/``False`` force tracing
  on/off, a path traces *and* exports there, a :class:`Tracer` instance
  is used as-is.

With tracing off (the default), every instrumentation site reduces to a
ContextVar read on the :data:`NULL_TRACER` singleton — no allocation,
no recording, no measurable overhead.
"""

from repro.observe.export import (
    chrome_trace,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.metrics import (
    EVALUATION_BUCKETS,
    ITERATION_BUCKETS,
    REQUEST_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.tracer import (
    LOG_LEVEL_ENV,
    NULL_TRACER,
    TRACE_ENV,
    NullTracer,
    Span,
    Tracer,
    activate,
    configure,
    configure_logging,
    get_tracer,
    maybe_activate,
    reset,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "EVALUATION_BUCKETS",
    "Gauge",
    "Histogram",
    "ITERATION_BUCKETS",
    "LOG_LEVEL_ENV",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REQUEST_BUCKETS",
    "Span",
    "TIME_BUCKETS",
    "TRACE_ENV",
    "Tracer",
    "activate",
    "chrome_trace",
    "configure",
    "configure_logging",
    "get_tracer",
    "maybe_activate",
    "reset",
    "resolve_tracer",
    "summary_table",
    "write_chrome_trace",
    "write_jsonl",
]
