"""Deterministic metrics: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.observe` (spans are the
temporal half).  Everything here is deliberately deterministic: histogram
bucket edges are fixed at creation time (never derived from the data),
snapshots render keys in sorted order, and merging two registries is
plain addition — so a serial run, a parallel run and a run re-assembled
from per-worker snapshots all report identical numbers for identical
work.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default edges for iteration-count histograms (Newton / Gummel loops).
ITERATION_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 5, 8, 12, 20, 40, 80, 160, 320, 640)

#: Default edges for "how many evaluations did the optimizer spend".
EVALUATION_BUCKETS: Tuple[float, ...] = (
    10, 25, 50, 100, 200, 400, 800, 1600, 3200)

#: Default edges for wall-time histograms [s].
TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)

#: Edges for request service-time histograms [s] — finer sub-second
#: resolution than :data:`TIME_BUCKETS` (admission decisions and
#: Retry-After hints key off these).
REQUEST_BUCKETS: Tuple[float, ...] = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 300.0)


class Counter:
    """Monotonic counter (floats allowed for accumulated quantities)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-value-wins instrument (pool width, hit rate, grid size...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (unset counts as zero).

        The natural instrument update for levels that rise and fall —
        queue depth, in-flight requests — where callers know the
        change, not the absolute value.
        """
        self.value = (self.value or 0.0) + float(delta)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram.

    ``edges`` are upper bounds of the first ``len(edges)`` buckets; one
    overflow bucket catches everything larger.  Edges are part of the
    histogram's identity: two histograms merge only if their edges match
    exactly, which is what keeps cross-process aggregation deterministic.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[float] = ITERATION_BUCKETS):
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ReproError(
                f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments, created on first use and merged by addition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instrument lookup (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str,
                  edges: Sequence[float] = ITERATION_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, edges))
        elif histogram.edges != tuple(float(e) for e in edges):
            raise ReproError(
                f"histogram {name!r} re-requested with different edges")
        return histogram

    # ------------------------------------------------------------------
    # snapshots and merging (cross-process aggregation)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-compatible state of every instrument, sorted by name."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].to_dict()
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].to_dict()
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].to_dict()
        return out

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges take the incoming value (the
        merged snapshot is the more recent observation).
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                if data["value"] is not None:
                    self.gauge(name).set(data["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, data["edges"])
                if list(histogram.edges) != list(data["edges"]):
                    raise ReproError(
                        f"cannot merge histogram {name!r}: edge mismatch")
                for i, count in enumerate(data["counts"]):
                    histogram.counts[i] += count
                histogram.count += data["count"]
                histogram.total += data["total"]
                for bound, pick in (("min", min), ("max", max)):
                    incoming = data[bound]
                    if incoming is None:
                        continue
                    current = getattr(histogram, bound)
                    setattr(histogram, bound,
                            incoming if current is None
                            else pick(current, incoming))
            else:
                raise ReproError(f"unknown instrument type {kind!r} "
                                 f"for {name!r}")

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)
