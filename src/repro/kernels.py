"""Solver-kernel selection (``REPRO_SOLVER_KERNEL``).

PR 9 rewrote the two hot solvers — the 1-D drift-diffusion bias sweep
and the SPICE MNA linear algebra — as *fast kernels* while keeping the
original implementations alive as differential oracles:

* ``tcad.dd1d`` sweeps: ``batched`` (stacked-tridiagonal Gummel across
  all bias points, active-set dropout) vs ``loop`` (the legacy
  per-point warm-started Python loop);
* ``repro.spice`` MNA: ``sparse`` (linear/nonlinear partitioned
  assembly, cached CSC sparsity pattern, LU factorisation reuse) vs
  ``dense`` (assemble + ``np.linalg.solve`` from scratch every Newton
  iteration).

Selection is one spec string — explicit argument > environment >
default — holding up to one token per axis::

    REPRO_SOLVER_KERNEL=batched,sparse   # the defaults
    REPRO_SOLVER_KERNEL=loop,dense       # full legacy (the oracle)
    REPRO_SOLVER_KERNEL=loop             # legacy dd1d, default MNA

The sparse MNA kernel additionally degrades to the dense oracle below
``REPRO_SPARSE_THRESHOLD`` unknowns (and whenever SciPy is missing), so
small systems — every committed golden and the whole standard-cell
flow — keep their bit-identical legacy arithmetic while large systems
get the fast path.  Unknown tokens and conflicting specs fail with
:class:`~repro.errors.ConfigError` at resolution time, same contract as
every other ``REPRO_*`` knob (see :mod:`repro.config`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.config import resolve_int
from repro.errors import ConfigError

#: Environment variable selecting the solver kernels.
KERNEL_ENV = "REPRO_SOLVER_KERNEL"

#: Environment variable with the sparse-MNA size threshold (unknowns).
SPARSE_THRESHOLD_ENV = "REPRO_SPARSE_THRESHOLD"

#: Systems with fewer unknowns than this use the dense oracle even
#: under the sparse kernel: LAPACK beats SuperLU on tiny matrices and
#: the legacy arithmetic stays bit-identical for every standard cell.
DEFAULT_SPARSE_THRESHOLD = 64

#: Valid tokens per axis (first entry = default).
DD1D_KERNELS = ("batched", "loop")
MNA_KERNELS = ("sparse", "dense")


@dataclass(frozen=True)
class KernelConfig:
    """Resolved kernel selection for both solver families."""

    dd1d: str = DD1D_KERNELS[0]
    mna: str = MNA_KERNELS[0]

    def spec(self) -> str:
        """The spec string reproducing this configuration."""
        return f"{self.dd1d},{self.mna}"


def parse_kernel_spec(spec: str) -> KernelConfig:
    """Parse a ``REPRO_SOLVER_KERNEL`` spec string.

    Tokens are comma (or whitespace) separated; at most one token per
    axis; unknown or conflicting tokens raise
    :class:`~repro.errors.ConfigError` naming the variable.
    """
    dd1d = None
    mna = None
    for token in spec.replace(",", " ").split():
        if token in DD1D_KERNELS:
            if dd1d is not None and dd1d != token:
                raise ConfigError(
                    f"{KERNEL_ENV} selects conflicting dd1d kernels "
                    f"{dd1d!r} and {token!r} in {spec!r}")
            dd1d = token
        elif token in MNA_KERNELS:
            if mna is not None and mna != token:
                raise ConfigError(
                    f"{KERNEL_ENV} selects conflicting MNA kernels "
                    f"{mna!r} and {token!r} in {spec!r}")
            mna = token
        else:
            raise ConfigError(
                f"{KERNEL_ENV} token {token!r} unknown (valid: "
                f"{', '.join(DD1D_KERNELS + MNA_KERNELS)})")
    return KernelConfig(dd1d=dd1d or DD1D_KERNELS[0],
                        mna=mna or MNA_KERNELS[0])


def resolve_kernels(spec: str = None) -> KernelConfig:
    """Resolve the kernel config: explicit spec > environment > default."""
    if spec is None:
        spec = os.environ.get(KERNEL_ENV, "")
    return parse_kernel_spec(spec)


def dd1d_kernel(explicit: str = None) -> str:
    """The dd1d sweep kernel (``"batched"`` or ``"loop"``).

    ``explicit`` may be a single axis token or a full spec string.
    """
    if explicit is not None and explicit in DD1D_KERNELS:
        return explicit
    return resolve_kernels(explicit).dd1d


def mna_kernel(explicit: str = None) -> str:
    """The MNA kernel (``"sparse"`` or ``"dense"``)."""
    if explicit is not None and explicit in MNA_KERNELS:
        return explicit
    return resolve_kernels(explicit).mna


def sparse_threshold(explicit=None) -> int:
    """Minimum unknown count for the sparse MNA path to engage."""
    return resolve_int(SPARSE_THRESHOLD_ENV, DEFAULT_SPARSE_THRESHOLD,
                       explicit, positive=True)


def scipy_sparse_available() -> bool:
    """True when ``scipy.sparse.linalg`` can be imported."""
    try:
        import scipy.sparse.linalg  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a hard dep here
        return False
    return True
