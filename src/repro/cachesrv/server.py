"""The remote artifact cache server: ``python -m repro.cachesrv``.

A deliberately small stdlib-only HTTP server storing and serving cache
entries by the engine's existing content-addressed keys, so N hosts
running sweeps need not share a filesystem:

* ``GET /artifacts/<stage>/<key>`` — the published entry body (the
  same JSON envelope the disk tier stores) plus its SHA-256 in the
  ``X-Repro-Sha256`` header; 404 on a miss.
* ``PUT /artifacts/<stage>/<key>`` — publish an entry.  The client
  sends the body's SHA-256 in ``X-Repro-Sha256``; the server recomputes
  it on receipt and refuses a mismatching upload with 422 (a truncated
  or bit-flipped body must never be published).  Publishes are atomic
  (temp file + rename) so a concurrent reader never sees a torn entry.
* ``DELETE /artifacts/<stage>/<key>`` — quarantine an entry a client
  proved corrupt (moved under ``.quarantine/``, kept for forensics).
* ``GET /healthz`` — ``{"status": "ok", "entries": N, "bytes": B}``.

Integrity is end-to-end: the digest is computed by the *writer*,
verified by the server on receipt, stored alongside the entry, served
back on every fetch and re-verified by the *reader* — a corrupt entry
is detectable no matter where the bytes rotted (wire, proxy, disk).

The server is storage, not policy: retries, timeouts, circuit breaking
and degrade-to-local all live client-side in
:class:`repro.engine.remote.RemoteCache` — a dumb server is one that
cannot take a fleet down with it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple

#: Header carrying an entry body's SHA-256 hex digest.
DIGEST_HEADER = "X-Repro-Sha256"

#: Path prefix of the entry routes.
ARTIFACTS_PREFIX = "/artifacts/"

#: Server-side quarantine directory (client-reported corruption).
QUARANTINE_DIRNAME = ".quarantine"

#: Legal stage names / keys in URLs.  The leading character must not
#: be a dot: that bans ``.``/``..`` traversal out of the store root
#: and collisions with internal dot-directories (``.quarantine``).
_SEGMENT_RE = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9_.-]{0,199}$")


def body_digest(body: bytes) -> str:
    """SHA-256 hex digest of an entry body."""
    return hashlib.sha256(body).hexdigest()


class CacheStore:
    """Filesystem store behind the server: one file per entry.

    Layout mirrors the local disk tier (``<root>/<stage>/<key>.json``)
    with a ``.sha256`` digest sidecar per entry, so an operator can
    inspect (and rsync) the store with ordinary tools.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def _paths(self, stage: str, key: str) -> Tuple[Path, Path]:
        entry = self.root / stage / f"{key}.json"
        return entry, entry.with_suffix(".sha256")

    def get(self, stage: str, key: str) -> Optional[Tuple[bytes, str]]:
        """``(body, digest)`` of a published entry, or None."""
        entry, sidecar = self._paths(stage, key)
        try:
            body = entry.read_bytes()
        except OSError:
            return None
        try:
            digest = sidecar.read_text(encoding="utf-8").strip()
        except OSError:
            digest = body_digest(body)
        return body, digest

    def put(self, stage: str, key: str, body: bytes, digest: str) -> None:
        """Atomically publish an entry and its digest sidecar."""
        entry, sidecar = self._paths(stage, key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            for path, data in ((sidecar, digest.encode("ascii")),
                               (entry, body)):
                fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                           suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(data)
                    os.replace(tmp, path)
                except OSError:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise

    def quarantine(self, stage: str, key: str) -> bool:
        """Move a client-reported-corrupt entry aside; False = absent."""
        entry, sidecar = self._paths(stage, key)
        dest_dir = self.root / QUARANTINE_DIRNAME
        with self._lock:
            if not entry.is_file():
                return False
            try:
                dest_dir.mkdir(parents=True, exist_ok=True)
                os.replace(entry, dest_dir / f"{stage}.{key}.json")
            except OSError:
                try:
                    os.unlink(entry)
                except OSError:
                    return False
            try:
                os.unlink(sidecar)
            except OSError:
                pass
            return True

    def stats(self) -> Tuple[int, int]:
        """``(entries, bytes)`` of published artifacts."""
        entries = 0
        total = 0
        for stage_dir in self.root.iterdir() if self.root.is_dir() else ():
            if not stage_dir.is_dir() or stage_dir.name.startswith("."):
                continue
            for path in stage_dir.glob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return entries, total


class _Handler(BaseHTTPRequestHandler):
    """One request: parse the route, delegate to the store."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-cachesrv"

    # the store is attached to the server object by CacheServer
    @property
    def store(self) -> CacheStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # response helpers
    # ------------------------------------------------------------------
    def _respond(self, status: int, body: bytes = b"",
                 digest: Optional[str] = None) -> None:
        self.send_response(status)
        if digest is not None:
            self.send_header(DIGEST_HEADER, digest)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _respond_json(self, status: int, payload: dict) -> None:
        self._respond(status, json.dumps(
            payload, sort_keys=True).encode("utf-8"))

    def _entry_route(self) -> Optional[Tuple[str, str]]:
        """``(stage, key)`` of an /artifacts route, else an error reply."""
        if not self.path.startswith(ARTIFACTS_PREFIX):
            self._respond_json(404, {"error": "unknown route",
                                     "path": self.path})
            return None
        rest = self.path[len(ARTIFACTS_PREFIX):]
        parts = rest.split("/")
        if len(parts) != 2 or not all(_SEGMENT_RE.match(p) for p in parts):
            self._respond_json(400, {"error": "bad artifact path",
                                     "path": self.path})
            return None
        return parts[0], parts[1]

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            entries, total = self.store.stats()
            self._respond_json(200, {"status": "ok", "entries": entries,
                                     "bytes": total})
            return
        route = self._entry_route()
        if route is None:
            return
        found = self.store.get(*route)
        if found is None:
            self._respond_json(404, {"error": "miss", "stage": route[0],
                                     "key": route[1]})
            return
        body, digest = found
        self._respond(200, body, digest=digest)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        route = self._entry_route()
        if route is None:
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._respond_json(400, {"error": "bad Content-Length"})
            return
        body = self.rfile.read(length) if length else b""
        claimed = (self.headers.get(DIGEST_HEADER) or "").strip().lower()
        actual = body_digest(body)
        if not claimed:
            self._respond_json(400, {"error": f"missing {DIGEST_HEADER} "
                                              f"header"})
            return
        if claimed != actual:
            # A truncated or corrupted upload must never be published.
            self._respond_json(422, {"error": "integrity mismatch",
                                     "claimed": claimed,
                                     "actual": actual})
            return
        try:
            self.store.put(*route, body=body, digest=actual)
        except OSError as exc:
            self._respond_json(507, {"error": f"store write failed: "
                                              f"{exc}"})
            return
        self._respond_json(200, {"stored": True, "bytes": len(body)})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        route = self._entry_route()
        if route is None:
            return
        removed = self.store.quarantine(*route)
        self._respond_json(200 if removed else 404,
                           {"quarantined": removed})


class CacheServer:
    """A bound cache server; ``serve_in_thread`` for tests, ``serve``
    for the CLI."""

    def __init__(self, root: os.PathLike, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False):
        self.store = CacheStore(root)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.store = self.store  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_thread(self) -> "CacheServer":
        """Start serving on a daemon thread (tests, chaos harness)."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-cachesrv",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
