"""Remote artifact cache server (``python -m repro.cachesrv``).

Stores and serves :mod:`repro.engine.cache` entries by their existing
content-addressed keys over a tiny stdlib HTTP protocol, so multiple
hosts running sweeps share warm artifacts without a shared filesystem.
The client side lives in :mod:`repro.engine.remote`.
"""

from repro.cachesrv.server import (
    ARTIFACTS_PREFIX,
    DIGEST_HEADER,
    QUARANTINE_DIRNAME,
    CacheServer,
    CacheStore,
    body_digest,
)

__all__ = [
    "ARTIFACTS_PREFIX",
    "DIGEST_HEADER",
    "QUARANTINE_DIRNAME",
    "CacheServer",
    "CacheStore",
    "body_digest",
]
