"""CLI entry point: ``python -m repro.cachesrv --port 8787 --root DIR``."""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.cachesrv.server import CacheServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cachesrv",
        description="Serve a remote artifact cache over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (default 0 = ephemeral)")
    parser.add_argument("--root", default=None,
                        help="store directory (default: a fresh temp dir)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root) if args.root else Path(
        tempfile.mkdtemp(prefix="repro-cachesrv-"))
    server = CacheServer(root, host=args.host, port=args.port,
                         verbose=args.verbose)
    # Announce the bound address first: the chaos harness and the CI
    # e2e parse this line to learn the ephemeral port.
    print(f"repro-cachesrv listening on {server.url} root={root}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.httpd.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
