"""Deprecation machinery for the 1.1 -> 1.2 API transition.

The 1.2 public surface is keyword-only and engine-first (every entry
point shares ``(*, cells=None, variants=None, parasitics=None,
dt=DEFAULT_DT, engine=None, observe=None)``).  The 1.1 call shapes —
positional arguments, the ``cell_names=``/``max_workers=`` keywords and
engine-less ``PpaRunner()`` — keep working for one release through the
helpers here, each emitting a :class:`DeprecationWarning` that names the
replacement.  They are removed in 1.3.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Sequence, Tuple


def warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit a DeprecationWarning pointing at the caller's call site."""
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def absorb_positional(func_name: str, args: Tuple[Any, ...],
                      legacy_order: Sequence[str],
                      kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Map deprecated positional ``args`` onto keyword values.

    ``legacy_order`` is the 1.1 positional parameter order.  Positional
    values overwrite the keyword defaults (passing the *same* parameter
    both ways is unsupported by the shim — 1.1 callers used one or the
    other).  Returns ``kwargs`` updated in place; raises ``TypeError``
    on arity overflow, matching what a real keyword-only signature
    would do.
    """
    if not args:
        return kwargs
    if len(args) > len(legacy_order):
        raise TypeError(
            f"{func_name}() takes at most {len(legacy_order)} "
            f"positional arguments ({len(args)} given)")
    warn_deprecated(
        f"positional arguments to {func_name}() are deprecated and will "
        f"be removed in 1.3; call it with keywords "
        f"({', '.join(f'{name}=' for name in legacy_order[:len(args)])})",
        stacklevel=4)
    for name, value in zip(legacy_order, args):
        kwargs[name] = value
    return kwargs


def absorb_renamed(func_name: str, old_name: str, old_value: Any,
                   new_name: str, new_value: Any) -> Any:
    """Resolve a renamed keyword (``old_name`` -> ``new_name``).

    Returns the effective value; warns when the deprecated spelling was
    used.  The new spelling wins if both are given.
    """
    if old_value is None:
        return new_value
    warn_deprecated(
        f"{func_name}({old_name}=...) is deprecated and will be removed "
        f"in 1.3; use {new_name}=", stacklevel=4)
    return new_value if new_value is not None else old_value
