"""Physical constants used throughout the device and circuit models.

All values are in SI units.  Temperature-dependent quantities are provided
as functions of absolute temperature so that every consumer agrees on the
same physics (the paper uses TNOM = 25 C, i.e. 298.15 K).
"""

from __future__ import annotations

import math

#: Elementary charge [C].
Q = 1.602176634e-19

#: Boltzmann constant [J/K].
K_B = 1.380649e-23

#: Vacuum permittivity [F/m].
EPS_0 = 8.8541878128e-12

#: Planck constant [J s].
H_PLANCK = 6.62607015e-34

#: Electron rest mass [kg].
M_0 = 9.1093837015e-31

#: Nominal temperature used by the paper (TNOM = 25 C) [K].
T_NOM = 298.15

#: Silicon bandgap at 300 K [eV].
EG_SI_300 = 1.12

#: Silicon effective density of states, conduction band at 300 K [m^-3].
NC_SI_300 = 2.86e25

#: Silicon effective density of states, valence band at 300 K [m^-3].
NV_SI_300 = 2.66e25


def thermal_voltage(temperature: float = T_NOM) -> float:
    """Return kT/q [V] at the given absolute temperature."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return K_B * temperature / Q


def silicon_bandgap(temperature: float = T_NOM) -> float:
    """Silicon bandgap [eV] with the Varshni temperature dependence."""
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    alpha = 4.73e-4  # eV/K
    beta = 636.0  # K
    return 1.17 - alpha * temperature * temperature / (temperature + beta)


def silicon_intrinsic_density(temperature: float = T_NOM) -> float:
    """Intrinsic carrier density of silicon [m^-3].

    Uses the effective densities of states scaled with T^{3/2} and the
    Varshni bandgap.  At 300 K this evaluates to ~1e16 m^-3 (1e10 cm^-3),
    the textbook value.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scale = (temperature / 300.0) ** 1.5
    nc = NC_SI_300 * scale
    nv = NV_SI_300 * scale
    eg = silicon_bandgap(temperature)
    vt = thermal_voltage(temperature)
    return math.sqrt(nc * nv) * math.exp(-eg / (2.0 * vt))
