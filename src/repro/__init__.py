"""repro — reproduction of "FDSOI Process Based MIV-transistor Utilization
for Standard Cell Designs in Monolithic 3D Integration" (SOCC 2023).

The package rebuilds the paper's whole tool chain in Python:

* :mod:`repro.tcad` — numerical FDSOI device simulator (Sentaurus stand-in),
* :mod:`repro.compact` — BSIMSOI4-lite level-70 compact model,
* :mod:`repro.extraction` — the staged TCAD-to-SPICE extraction of Fig. 3,
* :mod:`repro.spice` — MNA circuit simulator (HSPICE stand-in),
* :mod:`repro.cells` — the 14 standard cells in four implementations,
* :mod:`repro.layout` — design-rule-driven area model,
* :mod:`repro.ppa` — the Figure-5 power/performance/area harness,
* :mod:`repro.engine` — content-addressed, parallel execution engine
  every expensive artefact is produced and cached through,
* :mod:`repro.flows` — one-call end-to-end pipeline,
* :mod:`repro.reporting` — regeneration of every table and figure.

Quickstart::

    from repro import quick_ppa
    comparison = quick_ppa(["INV1X1", "NAND2X1"])
    print(comparison.render_metric("delay", scale=1e12, unit="ps"))
"""

from repro.engine import Engine, RunManifest, default_engine
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant
from repro.cells.variants import DeviceVariant
from repro.ppa.comparison import PpaComparison
from repro.ppa.runner import PpaRunner

__version__ = "1.1.0"

__all__ = [
    "ProcessParameters",
    "DEFAULT_PROCESS",
    "ChannelCount",
    "Engine",
    "Polarity",
    "RunManifest",
    "default_engine",
    "design_for_variant",
    "DeviceVariant",
    "PpaRunner",
    "PpaComparison",
    "quick_ppa",
    "__version__",
]


def quick_ppa(cell_names=None) -> PpaComparison:
    """Run the full pipeline on a set of cells and return the comparison.

    Convenience wrapper over :class:`repro.ppa.runner.PpaRunner` — the
    first call characterises and extracts all device variants (about half
    a minute), later calls reuse the caches.
    """
    runner = PpaRunner()
    return PpaComparison.from_results(runner.sweep(cell_names=cell_names))
