"""repro — reproduction of "FDSOI Process Based MIV-transistor Utilization
for Standard Cell Designs in Monolithic 3D Integration" (SOCC 2023).

The package rebuilds the paper's whole tool chain in Python:

* :mod:`repro.tcad` — numerical FDSOI device simulator (Sentaurus stand-in),
* :mod:`repro.compact` — BSIMSOI4-lite level-70 compact model,
* :mod:`repro.extraction` — the staged TCAD-to-SPICE extraction of Fig. 3,
* :mod:`repro.spice` — MNA circuit simulator (HSPICE stand-in),
* :mod:`repro.cells` — the 14 standard cells in four implementations,
* :mod:`repro.layout` — design-rule-driven area model,
* :mod:`repro.ppa` — the Figure-5 power/performance/area harness,
* :mod:`repro.engine` — content-addressed, parallel execution engine
  every expensive artefact is produced and cached through,
* :mod:`repro.observe` — span tracing, metrics and trace exports,
* :mod:`repro.flows` — one-call end-to-end pipeline,
* :mod:`repro.serve` — multi-tenant characterisation service
  (admission control, deadlines, request coalescing, graceful drain),
* :mod:`repro.reporting` — regeneration of every table and figure.

Quickstart (1.2 API — keyword-only, engine-first)::

    from repro import quick_ppa
    comparison = quick_ppa(cells=["INV1X1", "NAND2X1"])
    print(comparison.render_metric("delay", scale=1e12, unit="ps"))

Every public entry point — :func:`quick_ppa`,
:func:`repro.flows.run_full_flow`, :func:`repro.flows.run_extractions`
and :class:`repro.ppa.runner.PpaRunner` — shares one keyword-only
signature family ``(*, cells=None, variants=None, parasitics=None,
dt=DEFAULT_DT, engine=None, observe=None)`` and accepts ``observe=`` to
scope tracing to the call (``True``, a path, or a
:class:`repro.observe.Tracer`)::

    comparison = quick_ppa(cells=["INV1X1"], observe="trace_out/")
    # trace_out/trace.json loads in chrome://tracing / Perfetto
"""

from repro.cells.netlist_builder import Parasitics
from repro.cells.variants import DeviceVariant
from repro.deprecation import absorb_positional, absorb_renamed
from repro.engine import (
    Engine,
    ExecutionBackend,
    PoolBackend,
    RunManifest,
    SerialBackend,
    TaskFailure,
    WorkQueueBackend,
    default_engine,
    resolve_backend,
)
from repro.errors import EngineRunError
from repro.flows import FullFlowResult, run_extractions, run_full_flow
from repro.geometry.process import DEFAULT_PROCESS, ProcessParameters
from repro.geometry.transistor_layout import ChannelCount
from repro.kernels import KernelConfig, resolve_kernels
from repro.observe import (
    NULL_TRACER,
    Tracer,
    configure,
    configure_logging,
    get_tracer,
    summary_table,
)
from repro.ppa.comparison import PpaComparison
from repro.ppa.runner import DEFAULT_DT, PpaRunner
from repro.resilience import FaultInjector, RetryPolicy
from repro.tcad.device import Polarity, design_for_variant

__version__ = "1.8.0"

__all__ = [
    "ChannelCount",
    "DEFAULT_DT",
    "DEFAULT_PROCESS",
    "DeviceVariant",
    "Engine",
    "EngineRunError",
    "ExecutionBackend",
    "FaultInjector",
    "FullFlowResult",
    "KernelConfig",
    "NULL_TRACER",
    "Parasitics",
    "Polarity",
    "PoolBackend",
    "PpaComparison",
    "PpaRunner",
    "ProcessParameters",
    "RetryPolicy",
    "RunManifest",
    "SerialBackend",
    "TaskFailure",
    "Tracer",
    "WorkQueueBackend",
    "configure",
    "configure_logging",
    "default_engine",
    "design_for_variant",
    "get_tracer",
    "quick_ppa",
    "resolve_backend",
    "resolve_kernels",
    "run_extractions",
    "run_full_flow",
    "summary_table",
    "__version__",
]


def quick_ppa(*args, cells=None, variants=None, parasitics=None,
              dt=DEFAULT_DT, engine=None, observe=None,
              cell_names=None) -> PpaComparison:
    """Run the full pipeline on a set of cells and return the comparison.

    Convenience wrapper over :class:`repro.ppa.runner.PpaRunner` — the
    first call characterises and extracts all device variants (about half
    a minute), later calls reuse the caches.  ``observe`` scopes a tracer
    to the call (see :mod:`repro.observe`).

    .. deprecated:: 1.2
       Positional arguments and ``cell_names=`` warn; use ``cells=``.
    """
    cells = absorb_renamed("quick_ppa", "cell_names", cell_names,
                           "cells", cells)
    cells = absorb_positional("quick_ppa", args, ("cells",),
                              {"cells": cells})["cells"]
    runner = PpaRunner(parasitics=parasitics, dt=dt,
                       engine=engine if engine is not None
                       else default_engine(),
                       observe=observe)
    return PpaComparison.from_results(
        runner.sweep(cells=cells, variants=variants))
