"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures without masking programming
errors.

The taxonomy is *machine readable*: every subclass carries a stable
``code`` string (dotted, namespaced, part of the public contract — a
client may branch on it) and a ``retryable`` flag saying whether the
same request can sensibly be retried (transient overload, lock
contention, interrupted runs) or is permanently wrong (bad input,
design-rule violation).  :meth:`ReproError.to_dict` renders the
``{type, code, message, retryable}`` record used by the service's JSON
error bodies and by :class:`~repro.engine.manifest.TaskFailure`
manifest entries.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all library errors.

    Subclasses override :attr:`code` (stable machine-readable
    identifier) and :attr:`retryable` (True when the same request may
    succeed later without modification).
    """

    code: str = "repro.error"
    retryable: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable record: ``{type, code, message, retryable}``."""
        return {
            "type": type(self).__name__,
            "code": self.code,
            "message": str(self),
            "retryable": self.retryable,
        }


def error_code(exc: BaseException) -> str:
    """The stable code of any exception (library or foreign)."""
    if isinstance(exc, ReproError):
        return exc.code
    return f"python.{type(exc).__name__}"


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """A :meth:`ReproError.to_dict`-shaped record for any exception."""
    if isinstance(exc, ReproError):
        return exc.to_dict()
    return {
        "type": type(exc).__name__,
        "code": error_code(exc),
        "message": str(exc),
        "retryable": False,
    }


class ConvergenceError(ReproError):
    """A nonlinear solver failed to converge.

    Carries diagnostic context (iteration count and final residual) so that
    failures can be triaged without re-running the solver.
    """

    code = "solver.convergence"
    retryable = False

    def __init__(self, message: str, iterations: int = -1,
                 residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        return (f"{base} (iterations={self.iterations}, "
                f"residual={self.residual:.3e})")


class ConfigError(ReproError):
    """An environment variable or explicit setting is unusable.

    Raised at resolution time (startup), before the bad value can
    propagate into a lock wait loop, lease heartbeat, or drain window.
    """

    code = "config.invalid"
    retryable = False


class TaskTimeoutError(ReproError):
    """A task exceeded its wall-time budget (``REPRO_TASK_TIMEOUT``)."""

    code = "engine.task_timeout"
    retryable = True


class CacheLockTimeout(ReproError):
    """An advisory cache lock could not be acquired within its timeout.

    Raised by :class:`repro.engine.locks.FileLock` when another process
    holds the lock past ``REPRO_LOCK_TIMEOUT`` seconds — the caller can
    degrade (compute without the lock, skip maintenance) instead of
    blocking a run forever on a wedged peer.
    """

    code = "cache.lock_timeout"
    retryable = True


class RunInterrupted(ReproError):
    """A run was stopped by SIGINT/SIGTERM (or a deadline) before completing.

    Carries the partial :class:`~repro.engine.manifest.RunManifest`
    (``status == "interrupted"``) so the caller can flush it alongside
    the run journal; ``python -m repro.flows resume <run_id>`` picks the
    run back up from exactly what the journal + content-addressed cache
    preserved.
    """

    code = "run.interrupted"
    retryable = True

    def __init__(self, message: str, manifest=None, run_id: str = ""):
        super().__init__(message)
        self.manifest = manifest
        self.run_id = run_id


class WorkerCrashError(ReproError):
    """A pool worker died (SIGKILL, OOM...) while computing a task."""

    code = "engine.worker_crash"
    retryable = True


class InjectedFault(ReproError):
    """A failure raised on purpose by :mod:`repro.resilience.faults`.

    Distinguishable from organic failures so tests (and trace readers)
    can tell an exercised recovery path from a real regression.
    """

    code = "test.injected_fault"
    retryable = True


class EngineRunError(ReproError):
    """Aggregated failure report of an ``on_error="continue"`` run.

    Carries the run's :class:`~repro.engine.manifest.TaskFailure`
    entries so callers can triage without re-parsing the message.
    """

    code = "engine.run_failed"
    retryable = False

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)

    def __str__(self) -> str:
        base = super().__str__()
        if not self.failures:
            return base
        lines = [base]
        for failure in self.failures:
            lines.append(f"  {failure.status:<7} {failure.task_id} "
                         f"[{failure.stage}] {failure.error_type}: "
                         f"{failure.message}")
        return "\n".join(lines)


class MeshError(ReproError):
    """Invalid mesh specification (non-monotonic points, empty region...)."""

    code = "tcad.mesh"
    retryable = False


class MaterialError(ReproError):
    """Unknown material or invalid material parameter."""

    code = "materials.invalid"
    retryable = False


class NetlistError(ReproError):
    """Malformed netlist: dangling node, duplicate element, missing ground."""

    code = "spice.netlist"
    retryable = False


class SingularMatrixError(ReproError):
    """The MNA system is singular (floating node or short loop)."""

    code = "spice.singular_matrix"
    retryable = False


class ExtractionError(ReproError):
    """Parameter extraction failed (bad targets, optimizer failure)."""

    code = "extraction.failed"
    retryable = False


class LayoutError(ReproError):
    """Design-rule violation or impossible layout request."""

    code = "layout.violation"
    retryable = False


class CellLibraryError(ReproError):
    """Unknown cell or malformed cell topology."""

    code = "cells.unknown"
    retryable = False


class SimulationError(ReproError):
    """A simulation request was invalid (bad sweep, missing analysis)."""

    code = "simulation.invalid"
    retryable = False


# ----------------------------------------------------------------------
# remote-cache-tier errors (repro.engine.remote / repro.cachesrv)
# ----------------------------------------------------------------------
class RemoteCacheError(ReproError):
    """Base class of remote cache tier failures.

    Every subclass is transient by design: the remote tier is an
    *accelerator*, never a correctness dependency — a failed remote
    operation degrades the run to local-only computation, and the same
    request can sensibly be retried once the endpoint recovers.
    """

    code = "cache.remote.error"
    retryable = True


class RemoteCacheTimeout(RemoteCacheError):
    """A remote cache operation exceeded its ``REPRO_REMOTE_TIMEOUT``
    budget (slow endpoint, delayed response, black-holed packets)."""

    code = "cache.remote.timeout"
    retryable = True


class RemoteCacheIntegrityError(RemoteCacheError):
    """A fetched remote entry failed integrity verification.

    The body's recomputed SHA-256 did not match the digest it was
    published with (or the envelope names the wrong key/stage) — the
    fetch is retried once (wire corruption is transient), and a second
    mismatch quarantines the entry server-side and is treated as a
    miss.  A corrupt remote entry must never poison a run.
    """

    code = "cache.remote.integrity"
    retryable = True


class RemoteCacheUnavailable(RemoteCacheError):
    """The remote cache endpoint is unreachable or refusing work.

    Raised for connection failures and 5xx responses; consecutive
    occurrences trip the tier's circuit breaker, after which the
    client degrades to local-only operation and re-probes the
    endpoint once per breaker reset window.
    """

    code = "cache.remote.unavailable"
    retryable = True


# ----------------------------------------------------------------------
# service-layer errors (repro.serve)
# ----------------------------------------------------------------------
class ServeError(ReproError):
    """Base class of service-layer failures.

    ``http_status`` is the HTTP status the service maps the error to;
    ``retry_after`` (seconds, or ``None``) feeds the ``Retry-After``
    response header when set.
    """

    code = "serve.error"
    retryable = False
    http_status: int = 500

    def __init__(self, message: str, retry_after=None):
        super().__init__(message)
        self.retry_after = retry_after


class InvalidRequest(ServeError):
    """The request body or headers cannot describe a valid run."""

    code = "serve.bad_request"
    retryable = False
    http_status = 400


class AdmissionRejected(ServeError):
    """Load shedding: the bounded request queue is full.

    ``retry_after`` is derived from the observed service time, so a
    well-behaved client backs off proportionally to the actual load.
    """

    code = "serve.overloaded"
    http_status = 429
    retryable = True


class QuotaExceeded(ServeError):
    """A tenant exhausted its token-bucket request quota."""

    code = "serve.quota_exceeded"
    http_status = 429
    retryable = True


class DeadlineExceeded(ServeError):
    """A request's deadline expired before its run completed.

    Carries the durable ``run_id`` so the client can retry the same
    request: the resumed run trusts everything the journal and the
    content-addressed cache already preserved.
    """

    code = "serve.deadline_exceeded"
    http_status = 504
    retryable = True

    def __init__(self, message: str, run_id: str = "", retry_after=None):
        super().__init__(message, retry_after=retry_after)
        self.run_id = run_id

    def to_dict(self) -> Dict[str, Any]:
        record = super().to_dict()
        record["run_id"] = self.run_id
        return record


class ServiceDraining(ServeError):
    """The service received SIGTERM and no longer admits new work."""

    code = "serve.draining"
    http_status = 503
    retryable = True
