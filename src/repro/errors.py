"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConvergenceError(ReproError):
    """A nonlinear solver failed to converge.

    Carries diagnostic context (iteration count and final residual) so that
    failures can be triaged without re-running the solver.
    """

    def __init__(self, message: str, iterations: int = -1,
                 residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        return (f"{base} (iterations={self.iterations}, "
                f"residual={self.residual:.3e})")


class TaskTimeoutError(ReproError):
    """A task exceeded its wall-time budget (``REPRO_TASK_TIMEOUT``)."""


class CacheLockTimeout(ReproError):
    """An advisory cache lock could not be acquired within its timeout.

    Raised by :class:`repro.engine.locks.FileLock` when another process
    holds the lock past ``REPRO_LOCK_TIMEOUT`` seconds — the caller can
    degrade (compute without the lock, skip maintenance) instead of
    blocking a run forever on a wedged peer.
    """


class RunInterrupted(ReproError):
    """A run was stopped by SIGINT/SIGTERM before completing.

    Carries the partial :class:`~repro.engine.manifest.RunManifest`
    (``status == "interrupted"``) so the caller can flush it alongside
    the run journal; ``python -m repro.flows resume <run_id>`` picks the
    run back up from exactly what the journal + content-addressed cache
    preserved.
    """

    def __init__(self, message: str, manifest=None, run_id: str = ""):
        super().__init__(message)
        self.manifest = manifest
        self.run_id = run_id


class WorkerCrashError(ReproError):
    """A pool worker died (SIGKILL, OOM...) while computing a task."""


class InjectedFault(ReproError):
    """A failure raised on purpose by :mod:`repro.resilience.faults`.

    Distinguishable from organic failures so tests (and trace readers)
    can tell an exercised recovery path from a real regression.
    """


class EngineRunError(ReproError):
    """Aggregated failure report of an ``on_error="continue"`` run.

    Carries the run's :class:`~repro.engine.manifest.TaskFailure`
    entries so callers can triage without re-parsing the message.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)

    def __str__(self) -> str:
        base = super().__str__()
        if not self.failures:
            return base
        lines = [base]
        for failure in self.failures:
            lines.append(f"  {failure.status:<7} {failure.task_id} "
                         f"[{failure.stage}] {failure.error_type}: "
                         f"{failure.message}")
        return "\n".join(lines)


class MeshError(ReproError):
    """Invalid mesh specification (non-monotonic points, empty region...)."""


class MaterialError(ReproError):
    """Unknown material or invalid material parameter."""


class NetlistError(ReproError):
    """Malformed netlist: dangling node, duplicate element, missing ground."""


class SingularMatrixError(ReproError):
    """The MNA system is singular (floating node or short loop)."""


class ExtractionError(ReproError):
    """Parameter extraction failed (bad targets, optimizer failure)."""


class LayoutError(ReproError):
    """Design-rule violation or impossible layout request."""


class CellLibraryError(ReproError):
    """Unknown cell or malformed cell topology."""


class SimulationError(ReproError):
    """A simulation request was invalid (bad sweep, missing analysis)."""
