"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConvergenceError(ReproError):
    """A nonlinear solver failed to converge.

    Carries diagnostic context (iteration count and final residual) so that
    failures can be triaged without re-running the solver.
    """

    def __init__(self, message: str, iterations: int = -1,
                 residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        return (f"{base} (iterations={self.iterations}, "
                f"residual={self.residual:.3e})")


class MeshError(ReproError):
    """Invalid mesh specification (non-monotonic points, empty region...)."""


class MaterialError(ReproError):
    """Unknown material or invalid material parameter."""


class NetlistError(ReproError):
    """Malformed netlist: dangling node, duplicate element, missing ground."""


class SingularMatrixError(ReproError):
    """The MNA system is singular (floating node or short loop)."""


class ExtractionError(ReproError):
    """Parameter extraction failed (bad targets, optimizer failure)."""


class LayoutError(ReproError):
    """Design-rule violation or impossible layout request."""


class CellLibraryError(ReproError):
    """Unknown cell or malformed cell topology."""


class SimulationError(ReproError):
    """A simulation request was invalid (bad sweep, missing analysis)."""
