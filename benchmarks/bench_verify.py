"""Wall-time budget of the fast verification suite.

Writes ``BENCH_verify.json`` — the number future PRs compare against so
the CI `verify` gate can't silently balloon.  Cold and warm engine
caches are timed separately: the cold time bounds a fresh-checkout CI
run, the warm time is the inner-loop cost a developer pays per edit.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.verify.goldens import GoldenStore
from repro.verify.suites import run_suite


@pytest.mark.engine
@pytest.mark.slow
def test_fast_suite_wall_time(tmp_path):
    from repro.engine import reset_default_engine
    from repro.engine.cache import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path / "verify-bench-cache")
    reset_default_engine()
    try:
        timings = {}
        reports = {}
        for label in ("cold", "warm"):
            start = time.perf_counter()
            reports[label] = run_suite("fast", store=GoldenStore())
            timings[label] = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = previous
        reset_default_engine()

    for label, report in reports.items():
        assert report.passed, f"{label} fast suite failed: " + ", ".join(
            c.name for c in report.checks if c.status == "fail")

    record = {
        "suite": "fast",
        "checks": len(reports["cold"].checks),
        "cold_run_s": timings["cold"],
        "warm_run_s": timings["warm"],
        "counts": reports["cold"].counts,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_verify.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
