"""Figure 5(c) — layout area per cell, four implementations.

Paper: average area reduction 9% (1-ch), 18% (2-ch), 12% (4-ch) vs the
two-layer 2-D baseline, with up to 31% total-substrate reduction under
independent per-layer placement and up to 25% for area-limited 4-ch use.
"""

from repro.cells.variants import DeviceVariant
from repro.layout.report import build_area_report
from repro.reporting.figures import fig5_series, render_csv


def test_fig5c(benchmark, ppa_comparison):
    series = benchmark(fig5_series, ppa_comparison, "area", 1e12)
    assert len(series["cells"]) == 14

    one = -ppa_comparison.average_change_percent(DeviceVariant.MIV_1CH,
                                                 "area")
    two = -ppa_comparison.average_change_percent(DeviceVariant.MIV_2CH,
                                                 "area")
    four = -ppa_comparison.average_change_percent(DeviceVariant.MIV_4CH,
                                                  "area")
    # Shape: 2-ch saves the most (paper 18%), 1-ch the least (paper 9%),
    # 4-ch in between (paper 12%).
    assert two > four > one > 4.0
    assert 12.0 < two < 20.0
    assert 5.0 < one < 12.0

    # The substrate-area discussion: top-layer bound approaching 31%.
    areas = build_area_report()
    top_best = 100 * areas.best_reduction(DeviceVariant.MIV_4CH,
                                          metric="top")
    assert 24.0 < top_best < 35.0

    print("\n[Figure 5c] layout area per cell (um^2):")
    print(render_csv(series, float_format="{:.4f}"))
    print("[Figure 5c] average reduction vs 2D: 1-ch %.1f%%  2-ch %.1f%%  "
          "4-ch %.1f%%  (paper: 9%% / 18%% / 12%%)" % (one, two, four))
    print("[Section IV-3] best top-layer (substrate) reduction, 4-ch: "
          "%.1f%% (paper: up to 31%%)" % top_best)
