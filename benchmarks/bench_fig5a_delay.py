"""Figure 5(a) — average propagation delay per cell, four implementations.

Paper: average delay -3% (1-ch), -2% (2-ch), +2% (4-ch) vs the 2-D
baseline.  We verify the signs and rough magnitudes.
"""

from repro.cells.variants import DeviceVariant
from repro.reporting.figures import fig5_series, render_csv


def test_fig5a(benchmark, ppa_comparison):
    series = benchmark(fig5_series, ppa_comparison, "delay", 1e12)
    assert len(series["cells"]) == 14

    one = ppa_comparison.average_change_percent(DeviceVariant.MIV_1CH,
                                                "delay")
    two = ppa_comparison.average_change_percent(DeviceVariant.MIV_2CH,
                                                "delay")
    four = ppa_comparison.average_change_percent(DeviceVariant.MIV_4CH,
                                                 "delay")
    # Shape: 1-ch and 2-ch faster than 2D (paper -3%/-2%), 4-ch slower
    # (paper +2%).
    assert -7.0 < one < -0.5
    assert -7.0 < two < -0.5
    assert 0.3 < four < 6.0

    print("\n[Figure 5a] delay per cell (ps):")
    print(render_csv(series, float_format="{:.3f}"))
    print("[Figure 5a] average vs 2D: 1-ch %+.1f%%  2-ch %+.1f%%  "
          "4-ch %+.1f%%  (paper: -3%% / -2%% / +2%%)" % (one, two, four))
