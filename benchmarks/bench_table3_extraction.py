"""Table III — TCAD-to-SPICE extraction errors.

Runs the Figure-3 staged flow (Low Drain -> High Drain -> Capacitance)
on all eight devices and verifies the paper's bound: every regional error
under 10%.
"""

from repro.extraction.flow import score_regions
from repro.geometry.transistor_layout import ChannelCount
from repro.reporting.paper import TABLE3_REFERENCE
from repro.reporting.tables import render_table3
from repro.tcad.device import Polarity


def test_table3(benchmark, extraction_report):
    # Benchmark the scoring step (the extraction itself runs once in the
    # session fixture; re-running it per round would take minutes).
    device = extraction_report.device(ChannelCount.FOUR, Polarity.NMOS)
    scores = benchmark(score_regions, device.model, device.targets)
    assert set(scores) == {"IDVG", "IDVD", "CV"}

    # The paper's claim: "overall extraction error was under 10% for all
    # cases" — check every cell of our Table III.
    assert extraction_report.max_error() < 10.0

    print("\n[Table III] measured extraction errors:")
    print(render_table3(extraction_report))
    print("[Table III] paper reference (for comparison):")
    for region, devices in TABLE3_REFERENCE.items():
        row = [region]
        for dev in ("FOUR", "TWO", "ONE", "TRADITIONAL"):
            row.append("%s n=%.1f%% p=%.1f%%" % (
                dev.lower()[:4], devices[dev]["n"], devices[dev]["p"]))
        print("  " + "  ".join(row))
