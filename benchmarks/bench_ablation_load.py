"""Ablation — load capacitance vs ignored internal capacitance.

The paper ignores internal metal coupling/fringing capacitances "to
limit the complexity of the design", arguing that "as the load
capacitance increases the effect of internal RC parasitic reduces
significantly on overall power and delay estimation".  We inject an
explicit 0.2 fF of internal-node capacitance (the kind of parasitic the
paper drops) and measure the delay-estimation error it would cause at
three output loads: the error must shrink as the load grows, validating
the paper's modelling choice at its 1 fF operating point.
"""

from repro.cells.library import get_cell
from repro.cells.netlist_builder import Parasitics, build_cell_circuit
from repro.cells.variants import DeviceVariant, extracted_model_set
from repro.cells.vectors import stimulus_plan_for
from repro.ppa.delay import measure_cell_delay
from repro.ppa.runner import _configure_sources
from repro.spice.elements.capacitor import Capacitor
from repro.spice.transient import transient

LOADS = (0.25e-15, 1e-15, 4e-15)
INTERNAL_CAP = 0.2e-15


def _delay(c_load, with_internal):
    spec = get_cell("INV1X1")
    models = extracted_model_set(DeviceVariant.TWO_D)
    netlist = build_cell_circuit(spec, models, Parasitics(c_load=c_load))
    if with_internal:
        # The tier-join node the paper's ignored coupling caps load.
        netlist.circuit.add(Capacitor("Cint", "y_b", "0", INTERNAL_CAP))
    results = {}
    for run in stimulus_plan_for(spec).runs:
        _configure_sources(netlist, run)
        record = [f"in_{run.toggled_input}", netlist.output_node]
        results[run.toggled_input] = (
            run, transient(netlist.circuit, t_stop=run.t_stop, dt=2e-11,
                           record_nodes=record))
    return measure_cell_delay(netlist, results)


def _estimation_errors():
    errors = []
    for load in LOADS:
        ignored = _delay(load, with_internal=False)
        full = _delay(load, with_internal=True)
        errors.append(full / ignored - 1.0)
    return errors


def test_load_vs_internal_caps(benchmark):
    errors = benchmark.pedantic(_estimation_errors, rounds=1, iterations=1)
    # The error from dropping internal caps shrinks as the load grows.
    assert errors[0] > errors[1] > errors[2] > 0.0
    # At the paper's 1 fF operating point the error is modest (< 15%).
    assert errors[1] < 0.15

    print("\n[Ablation: ignored internal caps] delay error from dropping "
          f"{INTERNAL_CAP * 1e15:.1f} fF of internal capacitance:")
    for load, error in zip(LOADS, errors):
        print(f"  C_load = {load * 1e15:4.2f} fF -> {100 * error:+.2f}%")
    print("  (paper: the internal-parasitic effect reduces as the load "
          "grows)")
