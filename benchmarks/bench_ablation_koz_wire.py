"""Ablation — keep-out-zone wiring capacitance.

The 2-D baseline pays extra output-route capacitance for detouring
around the gate-MIV keep-out zone (Parasitics.c_keepout_wire).  This
ablation zeroes it and measures how much of the 2-channel variant's
delay/power advantage it carries on the inverter.
"""

from repro.cells.library import get_cell
from repro.cells.netlist_builder import Parasitics
from repro.cells.variants import DeviceVariant
from repro.ppa.delay import measure_cell_delay
from repro.ppa.power import measure_cell_power
from repro.ppa.runner import simulate_cell


def _inv_delta(parasitics):
    spec = get_cell("INV1X1")
    metrics = {}
    for variant in (DeviceVariant.TWO_D, DeviceVariant.MIV_2CH):
        netlist, results = simulate_cell(spec, variant, parasitics)
        metrics[variant] = (measure_cell_delay(netlist, results),
                            measure_cell_power(netlist, results))
    delay_change = metrics[DeviceVariant.MIV_2CH][0] / \
        metrics[DeviceVariant.TWO_D][0] - 1.0
    power_change = metrics[DeviceVariant.MIV_2CH][1] / \
        metrics[DeviceVariant.TWO_D][1] - 1.0
    return delay_change, power_change


def test_koz_wire_ablation(benchmark):
    with_koz = _inv_delta(Parasitics())
    without_koz = benchmark.pedantic(
        _inv_delta, args=(Parasitics(c_keepout_wire=0.0),),
        rounds=1, iterations=1)

    # The 2-ch advantage must survive without the KOZ wire term (the
    # device-level drive gain carries most of it) ...
    assert without_koz[0] < 0.0
    # ... but shrink, showing the wire term contributes.
    assert with_koz[0] < without_koz[0]
    assert with_koz[1] < without_koz[1]

    print("\n[Ablation: keep-out wire cap] 2-ch vs 2D on INV1X1:")
    print(f"  {'condition':<16} {'delay':>8} {'power':>8}")
    print(f"  {'with KOZ cap':<16} {100 * with_koz[0]:>+7.2f}% "
          f"{100 * with_koz[1]:>+7.2f}%")
    print(f"  {'without':<16} {100 * without_koz[0]:>+7.2f}% "
          f"{100 * without_koz[1]:>+7.2f}%")
