"""Figure 5(b) — average power per cell, four implementations.

Paper: average power -0.5% (1-ch), -1% (2-ch), -2% (4-ch) vs the 2-D
baseline — all MIV variants save power, with ~1%-scale magnitudes.
"""

from repro.cells.variants import DeviceVariant
from repro.reporting.figures import fig5_series, render_csv


def test_fig5b(benchmark, ppa_comparison):
    series = benchmark(fig5_series, ppa_comparison, "power", 1e6)
    assert len(series["cells"]) == 14

    changes = {
        variant: ppa_comparison.average_change_percent(variant, "power")
        for variant in (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                        DeviceVariant.MIV_4CH)
    }
    # Shape: every MIV variant reduces average power, at the ~1% scale.
    for variant, change in changes.items():
        assert -4.0 < change < 0.0, f"{variant.value}: {change:+.2f}%"

    print("\n[Figure 5b] power per cell (uW):")
    print(render_csv(series, float_format="{:.4f}"))
    print("[Figure 5b] average vs 2D: 1-ch %+.2f%%  2-ch %+.2f%%  "
          "4-ch %+.2f%%  (paper: -0.5%% / -1%% / -2%%)" % (
              changes[DeviceVariant.MIV_1CH],
              changes[DeviceVariant.MIV_2CH],
              changes[DeviceVariant.MIV_4CH]))
