"""Figure 2 — MIV-transistor layouts (1/2/4-channel + traditional).

Regenerates the four top-view layouts and verifies the width partition
192 = 2 x 96 = 4 x 48 nm and the footprint ordering.
"""

import pytest

from repro.geometry.process import DEFAULT_PROCESS
from repro.geometry.transistor_layout import ChannelCount, layout_for_variant


def _build_all():
    return {v: layout_for_variant(v, DEFAULT_PROCESS) for v in ChannelCount}


def test_fig2_footprints(benchmark):
    layouts = benchmark(_build_all)
    # Width partition of Section III.
    assert layouts[ChannelCount.ONE].channel_width == pytest.approx(192e-9)
    assert layouts[ChannelCount.TWO].channel_width == pytest.approx(96e-9)
    assert layouts[ChannelCount.FOUR].channel_width == pytest.approx(48e-9)
    for layout in layouts.values():
        assert layout.total_width == pytest.approx(192e-9)
    # Merging the MIV into the gate shrinks the device footprint.
    assert (layouts[ChannelCount.TWO].area <
            layouts[ChannelCount.ONE].area <
            layouts[ChannelCount.TRADITIONAL].area)
    print("\n[Figure 2] footprints (nm x nm):")
    for variant, layout in layouts.items():
        print("  %-12s %4.0f x %4.0f  (%d channels of %.0f nm)" % (
            variant.name.lower(), layout.body_width * 1e9,
            layout.height * 1e9, layout.n_channels,
            layout.channel_width * 1e9))
