"""The abstract / summary headline claims.

Paper: "standard cells created using 2-channel MIV-transistors had shown
a 3% reduction in the overall power-delay-product and 18% average layout
area reduction compared to the traditional 2-layer implementation";
"power consumption and delay time ... reduced by 1% and 3% on average".
"""

from repro.cells.variants import DeviceVariant
from repro.reporting.paper import FIG5_REFERENCE


def _collect(comparison):
    return {
        "pdp_2ch": comparison.average_change_percent(
            DeviceVariant.MIV_2CH, "pdp"),
        "area_2ch": comparison.average_change_percent(
            DeviceVariant.MIV_2CH, "area"),
        "delay_1ch": comparison.average_change_percent(
            DeviceVariant.MIV_1CH, "delay"),
        "power_2ch": comparison.average_change_percent(
            DeviceVariant.MIV_2CH, "power"),
    }


def test_summary_claims(benchmark, ppa_comparison):
    summary = benchmark(_collect, ppa_comparison)

    # 2-ch PDP reduction (paper: ~3%).
    assert summary["pdp_2ch"] < -1.0
    # 2-ch area reduction (paper: 18%).
    assert -20.0 < summary["area_2ch"] < -12.0
    # best delay reduction among MIV variants ~3% (paper).
    assert summary["delay_1ch"] < -1.0
    # power reduced on average (paper ~1%).
    assert summary["power_2ch"] < 0.0

    print("\n[Summary] measured vs paper (average change vs 2D):")
    print("  2-ch PDP    %+.1f%%   (paper ~ -3%%)" % summary["pdp_2ch"])
    print("  2-ch area   %+.1f%%   (paper  -18%%)" % summary["area_2ch"])
    print("  1-ch delay  %+.1f%%   (paper  -3%%)" % summary["delay_1ch"])
    print("  2-ch power  %+.2f%%   (paper  -1%%)" % summary["power_2ch"])
    print("  paper Fig.5 reference:", FIG5_REFERENCE)
