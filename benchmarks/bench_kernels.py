"""Solver-kernel speedup benchmark -> the ``kernels`` rows of
``BENCH_engine.json``.

Two rows, one per tentpole kernel, each timing the *same* workload under
the legacy oracle and the fast kernel:

``dd1d-batched``
    a paper-style I-V sweep over the S/D extension bar, per-point
    Gummel loop (``kernel="loop"``) vs the stacked-tridiagonal batched
    Newton (``kernel="batched"``);
``spice-sparse``
    a transient on a long RC ladder, dense LAPACK solves
    (``REPRO_SOLVER_KERNEL=dense``) vs CSC assembly with cached
    ``splu`` factorisations (``sparse``).

The legacy side is pinned *explicitly* — the unset-env default is the
fast path, so an un-pinned "baseline" would silently benchmark the new
kernel against itself.  Wall times are best-of-3 after a warmup run
because the CI box has one CPU and noisy timers.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import KERNEL_ENV, SPARSE_THRESHOLD_ENV
from repro.spice import Capacitor, Circuit, Resistor, pulse_source, transient
from repro.tcad.dd1d import DriftDiffusion1D, uniform_bar

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _best_of(fn, rounds: int = 3) -> float:
    fn()  # warmup: page in code paths and caches
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _rc_ladder(stages: int) -> Circuit:
    c = Circuit("ladder")
    c.add(pulse_source("VIN", "n0", "0", v1=0.0, v2=1.0, delay=1e-10,
                       rise=5e-11, fall=5e-11, width=2e-9, period=5e-9))
    for i in range(stages):
        c.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3))
        c.add(Capacitor(f"C{i}", f"n{i + 1}", "0", 2e-15))
    return c


def _pin_kernels(spec: str, threshold: str = None):
    os.environ[KERNEL_ENV] = spec
    if threshold is None:
        os.environ.pop(SPARSE_THRESHOLD_ENV, None)
    else:
        os.environ[SPARSE_THRESHOLD_ENV] = threshold


@pytest.mark.engine
def test_kernel_speedups():
    """Times both kernels against their legacy oracles and rewrites the
    ``kernels`` key of ``BENCH_engine.json`` (the rest of the file — the
    execution-engine rows — is left untouched)."""
    saved = {name: os.environ.get(name)
             for name in (KERNEL_ENV, SPARSE_THRESHOLD_ENV)}
    try:
        rows = {}

        # --- dd1d: batched bias-sweep Newton ---------------------------
        solver = DriftDiffusion1D(uniform_bar())
        biases = list(np.linspace(0.0, 0.3, 25))

        loop_s = _best_of(lambda: solver.sweep(biases, kernel="loop"))
        batched_s = _best_of(lambda: solver.sweep(biases, kernel="batched"))
        ref = [s.current for s in solver.sweep(biases, kernel="loop")]
        fast = [s.current for s in solver.sweep(biases, kernel="batched")]
        np.testing.assert_allclose(fast, ref, rtol=1e-6, atol=1e-15)
        rows["dd1d-batched"] = {
            "workload": f"I-V sweep, {len(biases)} bias points, "
                        f"{solver.bar.n_nodes}-node bar",
            "legacy": "loop", "kernel": "batched",
            "legacy_wall_s": loop_s, "kernel_wall_s": batched_s,
            "speedup": loop_s / batched_s,
        }
        assert rows["dd1d-batched"]["speedup"] >= 2.0

        # --- spice: sparse MNA with factorisation reuse ----------------
        stages = 240

        def run_ladder():
            return transient(_rc_ladder(stages), t_stop=4e-9, dt=2e-11,
                             record_nodes=[f"n{stages}"])

        _pin_kernels("loop,dense")
        dense_s = _best_of(run_ladder)
        dense_v = run_ladder().waveform(f"n{stages}").v
        _pin_kernels("loop,sparse")
        sparse_s = _best_of(run_ladder)
        sparse_v = run_ladder().waveform(f"n{stages}").v
        np.testing.assert_allclose(sparse_v, dense_v, rtol=1e-6,
                                   atol=1e-9)
        rows["spice-sparse"] = {
            "workload": f"RC-ladder transient, {stages} stages "
                        f"({stages + 2} unknowns), 200 timesteps",
            "legacy": "dense", "kernel": "sparse",
            "legacy_wall_s": dense_s, "kernel_wall_s": sparse_s,
            "speedup": dense_s / sparse_s,
        }
        assert rows["spice-sparse"]["speedup"] >= 1.5
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    payload["kernels"] = rows
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
