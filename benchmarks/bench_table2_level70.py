"""Table II — level-70 constants and flags used in extraction."""

import pytest

from repro.compact.parameters import LEVEL70_CONSTANTS
from repro.reporting.tables import render_table2

PAPER_TABLE2 = {
    "LEVEL": 70,
    "MOBMOD": 4,
    "CAPMOD": 3,
    "IGCMOD": 0,
    "SOIMOD": 2,
    "TSI": 7e-9,
    "TOX": 1e-9,
    "TBOX": 100e-9,
    "L": 48e-9,
    "W": 192e-9,
    "TNOM": 25.0,
}


def test_table2(benchmark):
    text = benchmark(render_table2)
    assert set(LEVEL70_CONSTANTS) == set(PAPER_TABLE2)
    for key, expected in PAPER_TABLE2.items():
        assert LEVEL70_CONSTANTS[key] == pytest.approx(expected), key
    print("\n[Table II]\n" + text)
