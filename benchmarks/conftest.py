"""Benchmark fixtures.

The expensive pipeline stages (TCAD characterisation of eight devices,
staged extraction, the full 14-cell x 4-variant transient sweep) run once
per session; individual benchmarks then measure and verify their piece
against the paper's reported numbers.
"""

from __future__ import annotations

import pytest

from repro.flows.full_flow import run_extractions
from repro.ppa.comparison import PpaComparison
from repro.ppa.runner import PpaRunner


@pytest.fixture(scope="session")
def extraction_report():
    """Table III input: all eight devices extracted."""
    return run_extractions()


@pytest.fixture(scope="session")
def ppa_comparison():
    """Figure 5 input: the full cells x variants PPA sweep."""
    runner = PpaRunner()
    return PpaComparison.from_results(runner.sweep())
