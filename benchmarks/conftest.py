"""Benchmark fixtures.

The expensive pipeline stages (TCAD characterisation of eight devices,
staged extraction, the full 14-cell x 4-variant transient sweep) run as
ONE engine task graph once per session; individual benchmarks then
measure and verify their piece against the paper's reported numbers.

The engine's on-disk artifact cache (``~/.cache/repro`` unless
``REPRO_CACHE_DIR`` overrides it) makes repeat benchmark sessions warm:
only changed stages recompute.
"""

from __future__ import annotations

import pytest

from repro.flows.full_flow import run_full_flow


@pytest.fixture(scope="session")
def full_flow_result():
    """The whole paper pipeline, one engine run, artifacts shared."""
    return run_full_flow()


@pytest.fixture(scope="session")
def extraction_report(full_flow_result):
    """Table III input: all eight devices extracted."""
    return full_flow_result.extraction


@pytest.fixture(scope="session")
def ppa_comparison(full_flow_result):
    """Figure 5 input: the full cells x variants PPA sweep."""
    return full_flow_result.ppa
