"""Remote cache tier benchmark: the ``remote`` rows of
``BENCH_engine.json``.

The scenario the tier exists for: a machine with a *cold* local cache
joining a fleet whose remote store is already *warm*.  The benchmark
runs the one-cell INV1X1 flow three times against a live in-process
``repro.cachesrv``:

``serial-cold``
    no remote tier — the compute baseline;
``remote-seed``
    cold local + empty remote: pays the compute AND the write-behind
    publishes (the price of warming the fleet's store);
``remote-warm``
    cold local + warm remote: every artifact read through the remote
    tier instead of recomputed — the row the ROADMAP tracks, with hit
    counts and bytes transferred.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

pytestmark = pytest.mark.engine


def test_remote_warm_replay(tmp_path):
    """Cold-local/warm-remote flow -> ``remote`` rows of the report."""
    from repro.cachesrv import CacheServer
    from repro.engine import Engine, RemoteCache
    from repro.flows.full_flow import run_full_flow

    cells = ["INV1X1"]
    server = CacheServer(tmp_path / "remote-store").serve_in_thread()
    rows = {}

    def timed(name, cache_dir, remote):
        engine = Engine(backend="serial", cache_dir=cache_dir,
                        remote=remote)
        start = time.perf_counter()
        result = run_full_flow(cells=cells, engine=engine)
        elapsed = time.perf_counter() - start
        stats = engine.cache.stats()
        rows[name] = {
            "wall_s": elapsed,
            "hits_remote": stats["hits_remote"],
            "remote": stats.get("remote"),
        }
        return result

    try:
        baseline = timed("serial-cold", tmp_path / "baseline", None)
        seed = timed("remote-seed", tmp_path / "seed",
                     RemoteCache(server.url))
        warm = timed("remote-warm", tmp_path / "replay",
                     RemoteCache(server.url))
    finally:
        server.close()

    assert baseline.headline() == seed.headline() == warm.headline()
    warm_row = rows["remote-warm"]
    assert warm_row["hits_remote"] > 0, \
        "warm-remote replay never hit the remote tier"
    assert warm_row["remote"]["bytes_fetched"] > 0
    assert warm_row["remote"]["degraded"] is False
    assert rows["remote-seed"]["remote"]["stores"] > 0

    for name, row in rows.items():
        remote = row["remote"]
        row["speedup_vs_serial_cold"] = \
            rows["serial-cold"]["wall_s"] / row["wall_s"]
        print(f"{name}: {row['wall_s']:.3f}s "
              f"hits_remote={row['hits_remote']}"
              + (f" fetched={remote['bytes_fetched']}B "
                 f"stored={remote['bytes_stored']}B" if remote else ""))

    payload = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    payload["remote"] = rows
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
