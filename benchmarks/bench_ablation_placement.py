"""Ablation / future work — independent per-layer placement.

The paper defers "placement algorithms that consider the bottom-layer and
top-layer device placement separately" to future work, estimating up to
31% total-substrate reduction.  This benchmark runs the implemented
row-based placer on a representative netlist and quantifies how much of
the substrate saving only appears once the layers are placed separately
— with the 4-channel variant (shortest top rows) gaining the most.
"""

from repro.cells.variants import DeviceVariant
from repro.layout.placement import Placer, demo_netlist

MIV_VARIANTS = (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                DeviceVariant.MIV_4CH)


def _study():
    placer = Placer(demo_netlist(scale=4), row_width=3e-6)
    return {variant: placer.substrate_savings(variant)
            for variant in MIV_VARIANTS}


def test_placement_ablation(benchmark):
    savings = benchmark(_study)

    gains = {variant: s["separate"] - s["joint"]
             for variant, s in savings.items()}
    # Per-layer placement helps every variant and the 4-ch one the most.
    for variant, gain in gains.items():
        assert gain >= -0.01, f"{variant.value}: {gain:+.3f}"
    assert gains[DeviceVariant.MIV_4CH] == max(gains.values())
    assert savings[DeviceVariant.MIV_4CH]["separate"] > 0.15

    print("\n[Future work: per-layer placement] substrate reduction vs "
          "2D baseline:")
    print(f"  {'variant':<7} {'joint':>8} {'separate':>10} {'gain':>7}")
    for variant, s in savings.items():
        print(f"  {variant.value:<7} {100 * s['joint']:>7.1f}% "
              f"{100 * s['separate']:>9.1f}% "
              f"{100 * gains[variant]:>+6.1f}%")
    print("  (paper: separate placement can reach ~31% substrate "
          "reduction)")
