"""Table I — process and design parameters.

Regenerates the table and checks every row against the paper's values.
"""

import pytest

from repro.geometry.process import DEFAULT_PROCESS
from repro.reporting.tables import render_table1

PAPER_TABLE1 = {
    "t_Si [nm]": 7.0,
    "h_src [nm]": 7.0,
    "t_ox [nm]": 1.0,
    "n_src [cm^-3]": 1e19,
    "t_spacer [nm]": 10.0,
    "t_BOX [nm]": 100.0,
    "t_miv [nm]": 25.0,
    "l_src [nm]": 48.0,
    "w_src [nm]": 192.0,
    "L_G [nm]": 24.0,
}


def test_table1(benchmark):
    text = benchmark(render_table1)
    table = DEFAULT_PROCESS.as_table1()
    assert set(table) == set(PAPER_TABLE1)
    for key, expected in PAPER_TABLE1.items():
        assert table[key] == pytest.approx(expected), key
    print("\n[Table I]\n" + text)
