"""Ablation — MIV side-gate coupling.

The delay trend of Figure 5(a) rests on the MIV acting as a side gate
(threshold reduction).  With the coupling disabled, the 1-/2-channel
devices lose their drive advantage and only penalties (edge scattering,
ring-gate stretch) remain — i.e. the MIV-transistor would be strictly
worse, confirming the coupling is the load-bearing mechanism.
"""

import pytest

import repro.tcad.device as device_mod
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant


def _drive_ratios():
    base = design_for_variant(ChannelCount.TRADITIONAL,
                              Polarity.NMOS).ids_magnitude(1.0, 1.0)
    return {variant: design_for_variant(variant, Polarity.NMOS)
            .ids_magnitude(1.0, 1.0) / base
            for variant in (ChannelCount.ONE, ChannelCount.TWO,
                            ChannelCount.FOUR)}


def test_coupling_ablation(benchmark):
    nominal = _drive_ratios()

    saved = device_mod.MIV_VTH_MAX
    device_mod.MIV_VTH_MAX = 0.0
    try:
        ablated = benchmark.pedantic(_drive_ratios, rounds=1, iterations=1)
    finally:
        device_mod.MIV_VTH_MAX = saved

    # With coupling: 1-ch / 2-ch beat the baseline.
    assert nominal[ChannelCount.ONE] > 1.02
    assert nominal[ChannelCount.TWO] > 1.02
    # Without coupling: no variant beats the baseline.
    for variant, ratio in ablated.items():
        assert ratio <= 1.001, f"{variant.name}: {ratio:.3f}"
    # And the 4-channel penalty deepens (penalties no longer offset).
    assert ablated[ChannelCount.FOUR] < nominal[ChannelCount.FOUR]

    print("\n[Ablation: MIV coupling] drive ratio vs traditional:")
    print(f"  {'variant':<8} {'nominal':>9} {'no coupling':>12}")
    for variant in nominal:
        print(f"  {variant.name.lower():<8} {nominal[variant]:>9.3f} "
              f"{ablated[variant]:>12.3f}")
