"""Engine micro-benchmarks (not a paper artefact).

Times the three computational kernels every experiment rests on (one
vertical Poisson solve, one vectorised compact-model evaluation, and one
inverter transient), plus the execution-engine macro benchmark that
writes ``BENCH_engine.json``: per-backend wall times (serial, cold and
warm-worker pool, two-process work queue, warm cache) of the end-to-end
flow with ``parallel_efficiency`` per row, the perf trajectory later
PRs compare against.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.spice import Capacitor, Circuit, Mosfet, dc_source, pulse_source, transient
from repro.tcad.device import Polarity
from repro.tcad.poisson1d import Poisson1D, StackSpec


def test_poisson_solve(benchmark):
    solver = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    solution = benchmark(solver.solve, 0.8)
    assert solution.q_inv > 0


def test_compact_batch_eval(benchmark):
    model = BsimSoi4Lite(params=default_parameters())
    vgs = np.linspace(0.0, 1.0, 1000)
    vds = np.full_like(vgs, 1.0)
    ids = benchmark(model.ids_batch, vgs, vds)
    assert np.all(np.isfinite(ids))


def test_inverter_transient(benchmark):
    from repro.cells.variants import extracted_model_set, DeviceVariant
    models = extracted_model_set(DeviceVariant.TWO_D)

    def build_and_run():
        c = Circuit("inv")
        c.add(dc_source("VDD", "vdd", "0", 1.0))
        c.add(pulse_source("VIN", "in", "0", v1=0.0, v2=1.0, delay=2e-10,
                           rise=1e-11, fall=1e-11, width=1e-9,
                           period=2.4e-9))
        c.add(Mosfet("MP", "out", "in", "vdd", models.pmos))
        c.add(Mosfet("MN", "out", "in", "0", models.nmos))
        c.add(Capacitor("CL", "out", "0", 1e-15))
        return transient(c, t_stop=2.3e-9, dt=2e-11)

    result = benchmark.pedantic(build_and_run, rounds=1, iterations=1)
    assert result.waveform("out").maximum() > 0.95


@pytest.mark.engine
@pytest.mark.slow
def test_engine_flow_wall_times(tmp_path):
    """Per-backend wall times of the pipeline -> BENCH_engine.json.

    One row per execution mode over the one-cell INV1X1 flow (full
    extraction chain plus the cell grid), each on an isolated cache
    directory so the numbers measure the engine, not the state of the
    user-level store:

    ``serial-cold``
        the baseline everything else normalises against;
    ``pool-cold``
        a fresh :class:`PoolBackend` (2 workers) — includes worker
        spawn cost;
    ``pool-warm-workers``
        the *same* pool instance on a fresh cache — persistent workers
        already up, so this isolates dispatch + shared-memory transfer
        from process start-up (the number the ROADMAP efficiency
        target tracks);
    ``workqueue-2proc``
        two real ``python -m repro.flows --backend workqueue``
        invocations draining one cache;
    ``warm-cache``
        the serial replay (all cache hits).

    ``parallel_efficiency`` of a row is its speedup over serial-cold
    divided by the parallelism the host can actually deliver,
    ``min(workers, cpu_count)`` — on a box with fewer cores than
    workers the theoretical speedup ceiling is ``cpu_count``, not
    ``workers``, and normalising by the impossible figure would make
    the metric read as a regression on small CI runners.  ``cpu_count``
    is recorded alongside so numbers from different machines stay
    comparable.  ``transfer_bytes`` counts serialized payload bytes
    that crossed a process boundary (shared-memory segments included).
    """
    import os
    from repro.engine import Engine, PoolBackend
    from repro.engine.durability import load_run
    from repro.flows.full_flow import run_full_flow
    from repro.resilience import chaos

    cells = ["INV1X1"]
    rows = {}

    def timed(name, fn, workers):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        rows[name] = {"wall_s": elapsed, "workers": workers,
                      "result": result}
        return result

    serial_cold = timed(
        "serial-cold",
        lambda: run_full_flow(cells=cells, engine=Engine(
            backend="serial", cache_dir=tmp_path / "serial")),
        workers=1)

    pool = PoolBackend(workers=2)
    try:
        pool_cold = timed(
            "pool-cold",
            lambda: run_full_flow(cells=cells, engine=Engine(
                backend=pool, cache_dir=tmp_path / "pool-cold")),
            workers=2)
        # Same pool, fresh cache: the workers are already warm.
        pool_warm = timed(
            "pool-warm-workers",
            lambda: run_full_flow(cells=cells, engine=Engine(
                backend=pool, cache_dir=tmp_path / "pool-warm")),
            workers=2)
    finally:
        pool.shutdown()

    wq_cache = tmp_path / "workqueue"
    env = chaos.repro_env(wq_cache)
    start = time.perf_counter()
    outcomes = chaos.run_concurrent_flows(
        [chaos.flow_argv(cells=cells, variants=("2D", "1-ch", "2-ch",
                                                "4-ch"),
                         extraction_variants=("TRADITIONAL", "ONE",
                                              "TWO", "FOUR"),
                         run_id=f"bench-wq-{i}", backend="workqueue")
         for i in (1, 2)], env)
    wq_s = time.perf_counter() - start
    assert all(o.returncode == 0 for o in outcomes), \
        outcomes[0].stderr[-500:]
    rows["workqueue-2proc"] = {"wall_s": wq_s, "workers": 2,
                               "result": None}

    warm = timed(
        "warm-cache",
        lambda: run_full_flow(cells=cells, engine=Engine(
            backend="serial", cache_dir=tmp_path / "serial")),
        workers=1)

    assert warm.manifest.hit_rate() == 1.0
    assert serial_cold.headline() == warm.headline() \
        == pool_cold.headline() == pool_warm.headline()
    wq_state = load_run(wq_cache, "bench-wq-1")
    assert wq_state.status == "completed"

    cold_s = rows["serial-cold"]["wall_s"]
    cpus = os.cpu_count() or 1
    backends = {}
    for name, row in rows.items():
        flow = row.pop("result")
        manifest = flow.manifest.summary() if flow is not None else None
        effective = min(row["workers"], cpus)
        backends[name] = {
            "wall_s": row["wall_s"],
            "workers": row["workers"],
            "effective_parallelism": effective,
            "speedup_vs_serial_cold": cold_s / row["wall_s"],
            "parallel_efficiency":
                (cold_s / row["wall_s"]) / effective,
            "transfer_bytes": (manifest["transfer_bytes"]
                               if manifest else None),
            "manifest": manifest,
        }

    payload = {
        "flow": {"cells": cells,
                 "tasks": len(serial_cold.manifest.records)},
        "cpu_count": os.cpu_count(),
        "backends": backends,
        # Back-compat headline numbers (pre-1.5 schema).
        "cold_run_s": cold_s,
        "warm_run_s": backends["warm-cache"]["wall_s"],
        "parallel_run_s": backends["pool-warm-workers"]["wall_s"],
        "parallel_workers": 2,
        "speedup_parallel_vs_cold":
            backends["pool-warm-workers"]["speedup_vs_serial_cold"],
        "speedup_warm_vs_cold":
            backends["warm-cache"]["speedup_vs_serial_cold"],
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
