"""Engine micro-benchmarks (not a paper artefact).

Times the three computational kernels every experiment rests on (one
vertical Poisson solve, one vectorised compact-model evaluation, and one
inverter transient), plus the execution-engine macro benchmark that
writes ``BENCH_engine.json``: cold-run, warm-run and parallel-run wall
times of the end-to-end flow, the perf trajectory later PRs compare
against.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.spice import Capacitor, Circuit, Mosfet, dc_source, pulse_source, transient
from repro.tcad.device import Polarity
from repro.tcad.poisson1d import Poisson1D, StackSpec


def test_poisson_solve(benchmark):
    solver = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    solution = benchmark(solver.solve, 0.8)
    assert solution.q_inv > 0


def test_compact_batch_eval(benchmark):
    model = BsimSoi4Lite(params=default_parameters())
    vgs = np.linspace(0.0, 1.0, 1000)
    vds = np.full_like(vgs, 1.0)
    ids = benchmark(model.ids_batch, vgs, vds)
    assert np.all(np.isfinite(ids))


def test_inverter_transient(benchmark):
    from repro.cells.variants import extracted_model_set, DeviceVariant
    models = extracted_model_set(DeviceVariant.TWO_D)

    def build_and_run():
        c = Circuit("inv")
        c.add(dc_source("VDD", "vdd", "0", 1.0))
        c.add(pulse_source("VIN", "in", "0", v1=0.0, v2=1.0, delay=2e-10,
                           rise=1e-11, fall=1e-11, width=1e-9,
                           period=2.4e-9))
        c.add(Mosfet("MP", "out", "in", "vdd", models.pmos))
        c.add(Mosfet("MN", "out", "in", "0", models.nmos))
        c.add(Capacitor("CL", "out", "0", 1e-15))
        return transient(c, t_stop=2.3e-9, dt=2e-11)

    result = benchmark.pedantic(build_and_run, rounds=1, iterations=1)
    assert result.waveform("out").maximum() > 0.95


@pytest.mark.engine
@pytest.mark.slow
def test_engine_flow_wall_times(tmp_path):
    """Cold / warm / parallel wall times of the pipeline -> BENCH_engine.json.

    Uses a one-cell flow (the full extraction chain plus the INV1X1
    grid) on isolated cache directories so the numbers measure the
    engine, not the state of the user-level store.
    """
    import os
    from repro.engine import Engine, resolve_worker_count
    from repro.flows.full_flow import run_full_flow

    cells = ["INV1X1"]

    start = time.perf_counter()
    serial_cold = run_full_flow(
        cells=cells,
        engine=Engine(max_workers=1, cache_dir=tmp_path / "serial"))
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_full_flow(
        cells=cells,
        engine=Engine(max_workers=1, cache_dir=tmp_path / "serial"))
    warm_s = time.perf_counter() - start

    workers = max(2, resolve_worker_count())
    start = time.perf_counter()
    parallel_cold = run_full_flow(
        cells=cells,
        engine=Engine(max_workers=workers, cache_dir=tmp_path / "parallel"))
    parallel_s = time.perf_counter() - start

    assert warm.manifest.hit_rate() == 1.0
    assert serial_cold.headline() == warm.headline() \
        == parallel_cold.headline()

    payload = {
        "flow": {"cells": cells, "tasks": len(serial_cold.manifest.records)},
        "cold_run_s": cold_s,
        "warm_run_s": warm_s,
        "parallel_run_s": parallel_s,
        "parallel_workers": workers,
        "cpu_count": os.cpu_count(),
        "speedup_parallel_vs_cold": cold_s / parallel_s,
        "speedup_warm_vs_cold": cold_s / warm_s,
        "manifest_cold": serial_cold.manifest.summary(),
        "manifest_warm": warm.manifest.summary(),
        "manifest_parallel": parallel_cold.manifest.summary(),
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
