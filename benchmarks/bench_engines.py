"""Engine micro-benchmarks (not a paper artefact).

Times the three computational kernels every experiment rests on: one
vertical Poisson solve, one vectorised compact-model evaluation, and one
inverter transient.  Useful for tracking performance regressions.
"""

import numpy as np

from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.spice import Capacitor, Circuit, Mosfet, dc_source, pulse_source, transient
from repro.tcad.device import Polarity
from repro.tcad.poisson1d import Poisson1D, StackSpec


def test_poisson_solve(benchmark):
    solver = Poisson1D(StackSpec(t_ox=1e-9, t_si=7e-9, t_box=100e-9))
    solution = benchmark(solver.solve, 0.8)
    assert solution.q_inv > 0


def test_compact_batch_eval(benchmark):
    model = BsimSoi4Lite(params=default_parameters())
    vgs = np.linspace(0.0, 1.0, 1000)
    vds = np.full_like(vgs, 1.0)
    ids = benchmark(model.ids_batch, vgs, vds)
    assert np.all(np.isfinite(ids))


def test_inverter_transient(benchmark):
    from repro.cells.variants import extracted_model_set, DeviceVariant
    models = extracted_model_set(DeviceVariant.TWO_D)

    def build_and_run():
        c = Circuit("inv")
        c.add(dc_source("VDD", "vdd", "0", 1.0))
        c.add(pulse_source("VIN", "in", "0", v1=0.0, v2=1.0, delay=2e-10,
                           rise=1e-11, fall=1e-11, width=1e-9,
                           period=2.4e-9))
        c.add(Mosfet("MP", "out", "in", "vdd", models.pmos))
        c.add(Mosfet("MN", "out", "in", "0", models.nmos))
        c.add(Capacitor("CL", "out", "0", 1e-15))
        return transient(c, t_stop=2.3e-9, dt=2e-11)

    result = benchmark.pedantic(build_and_run, rounds=1, iterations=1)
    assert result.waveform("out").maximum() > 0.95
