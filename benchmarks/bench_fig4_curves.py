"""Figure 4 — level-70 extraction overlay for the 4-channel device.

Regenerates the TCAD-vs-SPICE curves (IdVg linear + saturation, IdVd
family, CV) for the 4-channel MIV-transistor, the device the paper plots.
"""

import numpy as np

from repro.extraction.error import region_error_percent
from repro.geometry.transistor_layout import ChannelCount
from repro.reporting.figures import fig4_curves, render_csv
from repro.tcad.device import Polarity


def test_fig4(benchmark, extraction_report):
    device = extraction_report.device(ChannelCount.FOUR, Polarity.NMOS)
    panels = benchmark(fig4_curves, device)

    # Overlay quality: the Table III bound (10%) holds per *region*
    # (IdVd averages over the four gate biases); individual panels may
    # deviate more at intermediate bias, as visible in the paper's plot.
    idvd_errors = []
    for name, panel in panels.items():
        error = region_error_percent(panel["spice"], panel["tcad"])
        assert np.all(np.isfinite(panel["spice"]))
        if name.startswith("idvd@"):
            idvd_errors.append(error)
        else:
            assert error < 10.0, f"{name}: {error:.1f}%"
        assert error < 20.0, f"{name}: {error:.1f}%"
    assert sum(idvd_errors) / len(idvd_errors) < 10.0

    print("\n[Figure 4] 4-channel NMOS, TCAD vs extracted SPICE "
          "(CSV, saturation transfer):")
    sat = panels["idvg_sat"]
    print(render_csv({"vg": sat["x"].tolist(),
                      "tcad_A": sat["tcad"].tolist(),
                      "spice_A": sat["spice"].tolist()}))
    print("[Figure 4] per-panel mean relative error:")
    for name, panel in panels.items():
        print("  %-12s %.1f%%" % (
            name, region_error_percent(panel["spice"], panel["tcad"])))
