"""Figure 1 — the 2-layer M3D FDSOI stack and MIV roles.

Audits the vertical stack (sequential integration: thin top tier, thin
inter-layer distance, sub-0.1 um MIV span) and the internal/external MIV
footprint asymmetry that motivates the MIV-transistor.
"""

from repro.geometry.layers import build_m3d_stack
from repro.geometry.miv import MivGeometry, MivRole
from repro.geometry.process import DEFAULT_PROCESS


def _build_and_audit():
    stack = build_m3d_stack(DEFAULT_PROCESS)
    internal = MivGeometry(DEFAULT_PROCESS, MivRole.INTERNAL_CONTACT)
    external = MivGeometry(DEFAULT_PROCESS, MivRole.EXTERNAL_CONTACT)
    return stack, internal, external


def test_fig1_stack(benchmark):
    stack, internal, external = benchmark(_build_and_audit)
    # Sequential integration: the top film is far thinner than the
    # carrier wafer, and the tier-to-tier span stays sub-micron.
    assert stack.find("top_active").thickness < 0.1e-6
    assert stack.miv_span() < 1e-6
    # MIV role asymmetry (the paper's Section II): internal contacts are
    # free, external contacts pay the keep-out.
    assert internal.footprint_area == 0.0
    assert external.footprint_area > (25e-9) ** 2 * 7
    print("\n[Figure 1] stack: %d layers, %.0f nm total; MIV span %.0f nm; "
          "external MIV footprint %.0f x %.0f nm" % (
              len(stack.layers), stack.total_thickness * 1e9,
              stack.miv_span() * 1e9, external.footprint_side * 1e9,
              external.footprint_side * 1e9))
