"""Extension — ring oscillators probe the slow-slew regime.

Five-stage rings built from each implementation's extracted models.  The
paper's cells are driven with sharp (10 ps) edges; a ring's slews are
self-generated and slow, where the MIV variants' *asymmetric* (n-type
only) threshold shift lowers the inverter switching threshold and
penalises the rising transition.  The benchmark verifies the rings
oscillate in the same GHz regime, that the weakest-drive 4-channel ring
never wins, and prints the regime difference as an adoption caveat.
"""

from repro.analysis.ring_oscillator import measure_ring_frequency
from repro.cells.variants import DeviceVariant


def _frequencies():
    return {variant: measure_ring_frequency(variant).frequency
            for variant in DeviceVariant}


def test_ring_regimes(benchmark):
    freqs = benchmark.pedantic(_frequencies, rounds=1, iterations=1)
    base = freqs[DeviceVariant.TWO_D]
    assert 1e9 < base < 1e11
    # Same regime for every variant.
    for variant, freq in freqs.items():
        assert 0.6 * base < freq < 1.6 * base, variant.value
    # The weakest-drive device cannot win the ring race.
    assert freqs[DeviceVariant.MIV_4CH] <= base * 1.02
    assert freqs[DeviceVariant.MIV_4CH] <= max(freqs.values())

    print("\n[Extension: ring oscillator] 5-stage ring frequencies:")
    for variant, freq in freqs.items():
        print(f"  {variant.value:<6} {freq / 1e9:6.2f} GHz "
              f"({freq / base - 1:+.1%} vs 2D)")
    print("  Note: ring slews are self-generated; the n-only V_th shift "
          "of the MIV\n  variants lowers the switching threshold and "
          "penalises rising edges here,\n  unlike the sharply driven "
          "Figure 5(a) cells.")
