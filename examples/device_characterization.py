"""Device deep-dive: TCAD-lite characterisation of all four devices.

Reproduces the Section II / III device study: builds the traditional
FDSOI transistor and the 1/2/4-channel MIV-transistors, sweeps Id-Vg
(linear and saturation), Id-Vd and C-V, and prints the figures of merit
that explain the Figure-5 trends (Ion, Ioff, subthreshold swing, drive
ratios).

Run:  python examples/device_characterization.py   (about 10 seconds)
"""

from repro.extraction.targets import cached_targets
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity, design_for_variant

VARIANTS = (ChannelCount.TRADITIONAL, ChannelCount.ONE, ChannelCount.TWO,
            ChannelCount.FOUR)


def main() -> None:
    print("Device figures of merit (NMOS, W=192 nm, L_G=24 nm, VDD=1 V)\n")
    header = (f"{'device':<12} {'Ion [uA]':>9} {'Ioff [pA]':>10} "
              f"{'SS [mV/dec]':>12} {'Cgg(1V) [fF]':>13} {'drive':>6}")
    print(header)
    print("-" * len(header))

    base_ion = None
    for variant in VARIANTS:
        device = design_for_variant(variant, Polarity.NMOS)
        targets = cached_targets(variant, Polarity.NMOS)
        ion = targets.idvg_sat.i[-1]
        ioff = targets.idvg_sat.i[0]
        swing = device.engine.subthreshold_swing()
        cgg = device.gate_capacitance(1.0)
        if base_ion is None:
            base_ion = ion
        print(f"{variant.name.lower():<12} {ion * 1e6:>9.1f} "
              f"{ioff * 1e12:>10.3f} {swing * 1e3:>12.1f} "
              f"{cgg * 1e15:>13.4f} {ion / base_ion:>6.3f}")

    print("\nWhy the Figure-5 trends happen:")
    print(" * 1-ch / 2-ch: the MIV side-gate lowers V_th (better body")
    print("   control) -> ~6% more drive -> faster cells;")
    print(" * 4-ch: 48 nm fingers suffer edge scattering and the ring")
    print("   gate stretches the channel -> ~4% less drive -> slower;")
    print(" * all MIV variants drop the gate-contact keep-out zone ->")
    print("   smaller layouts and shorter wires.")


if __name__ == "__main__":
    main()
