"""Design-space exploration: corners, ring oscillators and placement.

Three extension studies on top of the paper's nominal evaluation:

1. Does the MIV-transistor drive advantage survive process corners?
2. Ring-oscillator frequencies per implementation (an independent check
   of the Figure 5(a) delay ordering, with self-generated slews).
3. How much substrate does *separate per-layer placement* (the paper's
   future work) recover for each variant?

Run:  python examples/design_space_exploration.py   (about one minute)
"""

from repro.analysis.ring_oscillator import measure_ring_frequency
from repro.analysis.variation import (
    advantage_yield,
    corner_drive_study,
    monte_carlo_drive,
)
from repro.cells.variants import DeviceVariant
from repro.geometry.transistor_layout import ChannelCount
from repro.layout.placement import Placer, demo_netlist


def corners() -> None:
    print("=== 1. process corners: NMOS drive ratio vs traditional ===")
    results = corner_drive_study()
    print(f"{'corner':<12} {'1-ch':>7} {'2-ch':>7} {'4-ch':>7}  holds?")
    for result in results:
        print(f"{result.label:<12} "
              f"{result.ratios[ChannelCount.ONE]:>7.3f} "
              f"{result.ratios[ChannelCount.TWO]:>7.3f} "
              f"{result.ratios[ChannelCount.FOUR]:>7.3f}  "
              f"{'yes' if result.miv_advantage_holds else 'NO'}")
    mc = monte_carlo_drive(n_samples=10, sigma=0.02)
    print(f"Monte-Carlo (10 samples, 2% sigma): qualitative finding "
          f"holds in {100 * advantage_yield(mc):.0f}% of samples\n")


def rings() -> None:
    print("=== 2. five-stage ring oscillators ===")
    base = None
    for variant in DeviceVariant:
        ring = measure_ring_frequency(variant)
        if base is None:
            base = ring.frequency
        print(f"{variant.value:<6} f = {ring.frequency / 1e9:6.2f} GHz   "
              f"stage delay {ring.stage_delay * 1e12:5.2f} ps   "
              f"({ring.frequency / base - 1.0:+.1%} vs 2D)")
    print("Ring slews are self-generated (slow); the n-only V_th shift "
          "lowers the\ninverter switching threshold and penalises rising "
          "edges, so the ordering\ndiffers from the driven-edge cell "
          "delays of Figure 5(a).\n")


def placement() -> None:
    print("=== 3. joint vs per-layer placement (future work) ===")
    placer = Placer(demo_netlist(scale=4), row_width=3e-6)
    print(f"{'variant':<7} {'joint':>8} {'separate':>10}")
    for variant in (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                    DeviceVariant.MIV_4CH):
        savings = placer.substrate_savings(variant)
        print(f"{variant.value:<7} {100 * savings['joint']:>7.1f}% "
              f"{100 * savings['separate']:>9.1f}%")
    print("Separate placement recovers the 4-channel device's short top "
          "rows,\nthe mechanism behind the paper's 'up to 31%' estimate.")


def main() -> None:
    corners()
    rings()
    placement()


if __name__ == "__main__":
    main()
