"""The Figure-3 extraction flow, step by step, with a model card.

Characterises the 2-channel MIV-transistor NMOS in TCAD-lite, runs the
three extraction stages individually (showing the parameter hand-off),
scores the Table III regions, and prints the resulting HSPICE-style
.model card.

Run:  python examples/extraction_flow.py   (about 10 seconds)
"""

from repro.compact.cards import render_model_card
from repro.compact.model import BsimSoi4Lite
from repro.compact.parameters import default_parameters
from repro.extraction.flow import ExtractionFlow, score_regions
from repro.extraction.optimizer import fit_parameters
from repro.extraction.stages import default_stage_sequence
from repro.extraction.targets import cached_targets
from repro.geometry.transistor_layout import ChannelCount
from repro.tcad.device import Polarity


def main() -> None:
    print("TCAD characterisation of the 2-channel MIV-transistor (n) ...")
    targets = cached_targets(ChannelCount.TWO, Polarity.NMOS)

    params = default_parameters()
    model = BsimSoi4Lite(params=params, polarity=Polarity.NMOS,
                        name="nch_miv2")
    print("\nRunning the Figure-3 stages:")
    for stage in default_stage_sequence():
        template = BsimSoi4Lite(params=params, polarity=Polarity.NMOS,
                                name=model.name)
        residual_fn = stage.residual_fn(template, targets)
        params, rms = fit_parameters(params, stage.parameter_names,
                                     residual_fn)
        fitted = {n: params[n] for n in stage.parameter_names}
        print(f"  {stage.name:<12} rms={rms:.4f}  " +
              "  ".join(f"{k}={v:.3g}" for k, v in list(fitted.items())[:4])
              + " ...")

    final = BsimSoi4Lite(params=params, polarity=Polarity.NMOS,
                         name="nch_miv2")
    print("\nTable III regional errors for this device:")
    for region, error in score_regions(final, targets).items():
        print(f"  {region:<5} {error:.1f}%   (paper bound: < 10%)")

    print("\nExtracted .model card:")
    print(render_model_card(final))

    print("For comparison, the packaged two-pass flow gives:")
    result = ExtractionFlow().run(targets)
    print("  ", {k: round(v, 2) for k, v in result.errors.items()})


if __name__ == "__main__":
    main()
