"""Extending the library: define, verify and evaluate a *new* cell.

Builds an AOI22 (y = !(a b + c d)) that is not part of the paper's 14
cells, proves its logic against a reference truth table, nets it with the
2-channel MIV-transistor models, simulates it, and compares its PPA with
the 2-D baseline — exactly the workflow a user of this library would
follow for their own cells.

Run:  python examples/custom_cell.py   (about one minute)
"""

import itertools

from repro.cells.netlist_builder import build_cell_circuit
from repro.cells.spec import CellSpec, GateStage, inp, parallel, series
from repro.cells.variants import DeviceVariant, extracted_model_set
from repro.cells.vectors import stimulus_plan_for
from repro.layout.cell_layout import CellAreaModel
from repro.ppa.delay import measure_cell_delay
from repro.ppa.power import measure_cell_power
from repro.ppa.runner import _configure_sources
from repro.spice.transient import transient


def build_aoi22() -> CellSpec:
    """AOI22: y = !(a b + c d) — one complementary stage."""
    return CellSpec(
        name="AOI22X1",
        inputs=("a", "b", "c", "d"),
        output="y",
        stages=(GateStage("y", parallel(series(inp("a"), inp("b")),
                                        series(inp("c"), inp("d")))),),
        description="2-2 AND-OR-invert",
    )


def verify_logic(cell: CellSpec) -> None:
    for bits in itertools.product((False, True), repeat=4):
        a, b, c, d = bits
        expected = not ((a and b) or (c and d))
        got = cell.evaluate(dict(zip(cell.inputs, bits)))
        assert got == expected, bits
    print(f"{cell.name}: truth table verified "
          f"({cell.transistor_count} transistors).")


def evaluate(cell: CellSpec, variant: DeviceVariant) -> dict:
    models = extracted_model_set(variant)
    netlist = build_cell_circuit(cell, models)
    results = {}
    for run in stimulus_plan_for(cell).runs:
        _configure_sources(netlist, run)
        record = [f"in_{run.toggled_input}", netlist.output_node]
        results[run.toggled_input] = (
            run, transient(netlist.circuit, t_stop=run.t_stop, dt=2e-11,
                           record_nodes=record))
    area = CellAreaModel().layout(cell, variant)
    return {
        "delay": measure_cell_delay(netlist, results),
        "power": measure_cell_power(netlist, results),
        "area": area.cell_area,
    }


def main() -> None:
    cell = build_aoi22()
    verify_logic(cell)

    print("\nSimulating AOI22X1 in the 2-D and 2-channel implementations...")
    baseline = evaluate(cell, DeviceVariant.TWO_D)
    proposed = evaluate(cell, DeviceVariant.MIV_2CH)

    print(f"\n{'metric':<8} {'2D':>12} {'2-ch':>12} {'change':>9}")
    for metric, scale, unit in (("delay", 1e12, "ps"),
                                ("power", 1e6, "uW"),
                                ("area", 1e12, "um2")):
        b, p = baseline[metric] * scale, proposed[metric] * scale
        print(f"{metric:<8} {b:>10.4f}{unit:<3} {p:>10.4f}{unit:<3} "
              f"{100 * (p / b - 1):>+8.2f}%")


if __name__ == "__main__":
    main()
