"""2-D electrostatics of the MIV side gate (Figure 2(a) intuition).

Solves the 2-D Poisson equation in a horizontal cut through the silicon
film: the oxide-lined MIV on the left at gate potential, the channel
region next to it, and a grounded contact far away.  Prints the potential
profile showing the MIS side-gating action through the 1 nm liner — the
physical basis of the MIV-transistor.

Run:  python examples/miv_electrostatics.py   (a few seconds)
"""

import numpy as np

from repro.geometry.process import DEFAULT_PROCESS
from repro.materials import SILICON, SILICON_DIOXIDE
from repro.tcad.poisson2d import Grid2D, Poisson2D


def main() -> None:
    process = DEFAULT_PROCESS
    liner = process.t_ox
    film = 48e-9  # one channel-width of silicon next to the MIV

    grid = Grid2D(liner + film, process.t_miv, 50, 26)
    solver = Poisson2D(grid)
    solver.set_permittivity_box(0, 0, liner, grid.height,
                                SILICON_DIOXIDE.permittivity)
    solver.set_permittivity_box(liner, 0, grid.width, grid.height,
                                SILICON.permittivity)
    solver.add_electrode(0, 0, 0, grid.height, 1.0)            # MIV face
    solver.add_electrode(grid.width, 0, grid.width, grid.height, 0.0)

    psi = solver.solve()
    mid = psi.shape[0] // 2
    profile = psi[mid, :]

    print("Potential along the channel direction (MIV face at x=0):")
    print(f"{'x [nm]':>8} {'psi [V]':>9}")
    for i in range(0, grid.nx, 4):
        print(f"{grid.x[i] * 1e9:>8.1f} {profile[i]:>9.3f}")

    field = solver.field_magnitude(psi)
    drop_across_liner = 1.0 - float(profile[np.searchsorted(grid.x, liner)])
    print(f"\nPeak field: {field.max():.2e} V/m")
    print(f"Potential dropped across the 1 nm liner: "
          f"{drop_across_liner:.3f} V")
    print("The remaining potential penetrates the silicon and gates it —")
    print("the metal-insulator-semiconductor action the MIV-transistor "
          "exploits.")


if __name__ == "__main__":
    main()
