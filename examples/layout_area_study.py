"""Layout area study — Figure 5(c) and the substrate-area discussion.

Computes the rule-based layout of every cell in every implementation,
prints the Figure 5(c) table, and reproduces the Section IV-3 discussion:
joint-placement cell area vs the independent-placement substrate bound
(up to ~31% for the 4-channel device).

Run:  python examples/layout_area_study.py   (instant — pure geometry)
"""

from repro.cells.variants import DeviceVariant
from repro.layout.device_footprint import row_geometry
from repro.layout.report import build_area_report

MIV_VARIANTS = (DeviceVariant.MIV_1CH, DeviceVariant.MIV_2CH,
                DeviceVariant.MIV_4CH)


def main() -> None:
    print("Row geometry per implementation (heights in nm):")
    for variant in DeviceVariant:
        geo = row_geometry(variant)
        print(f"  {variant.value:<5} top row {geo.top_height * 1e9:5.0f}  "
              f"bottom row {geo.bottom_height * 1e9:5.0f}  "
              f"pitch {geo.top_pitch * 1e9:5.0f}")

    report = build_area_report()
    print("\nFigure 5(c) — cell areas (um^2):")
    print(report.render())

    print("\nAverage / best-case reductions vs the 2-D baseline:")
    for metric, label in (("cell", "joint-placement cell area"),
                          ("substrate", "sum of both layers"),
                          ("top", "top layer only (independent placement)")):
        print(f"  {label}:")
        for variant in MIV_VARIANTS:
            avg = 100 * report.average_reduction(variant, metric)
            best = 100 * report.best_reduction(variant, metric)
            print(f"    {variant.value:<5} avg {avg:5.1f}%   "
                  f"best {best:5.1f}%")
    print("\nPaper: 9% / 18% / 12% average cell-area reduction and up to")
    print("31% substrate reduction with separate per-layer placement.")


if __name__ == "__main__":
    main()
