"""Quickstart: from device physics to a PPA verdict in one script.

Runs the full pipeline on a pair of cells:

1. TCAD-lite characterisation of the traditional FDSOI devices and the
   2-channel MIV-transistor,
2. staged level-70 extraction (Figure 3),
3. standard-cell transient simulation with the paper's parasitics,
4. the 2-channel vs 2-D comparison (Figure 5 for two cells),
5. a traced re-run exporting a Chrome trace and a metrics summary.

Run:  python examples/quickstart.py        (about one minute)
"""

import tempfile
from pathlib import Path

from repro import DeviceVariant, quick_ppa
from repro.reporting.figures import fig5_series, render_csv


def main() -> None:
    cells = ["INV1X1", "NAND2X1"]
    print(f"Characterising devices and simulating {cells} ...")
    comparison = quick_ppa(cells=cells)

    for metric, scale, unit in (("delay", 1e12, "ps"),
                                ("power", 1e6, "uW"),
                                ("area", 1e12, "um^2")):
        print(f"\n=== {metric} ({unit}) ===")
        print(render_csv(fig5_series(comparison, metric, scale),
                         float_format="{:.4f}"))

    two_ch = DeviceVariant.MIV_2CH
    print("\n2-channel MIV-transistor vs 2-D baseline (these cells):")
    for metric in ("delay", "power", "area", "pdp"):
        change = comparison.average_change_percent(two_ch, metric)
        print(f"  {metric:>6}: {change:+.2f}%")
    print("\nPaper headline (full library): delay -2%, power -1%, "
          "area -18%, PDP -3%.")

    # -- observability demo: re-run traced (warm cache, so it's fast) --
    out_dir = Path(tempfile.mkdtemp(prefix="repro_trace_"))
    print(f"\nRe-running with tracing on (exports under {out_dir}) ...")
    quick_ppa(cells=cells, observe=out_dir)
    print(f"  Chrome trace: {out_dir / 'trace.json'} "
          "(load in chrome://tracing or ui.perfetto.dev)")
    print(f"  Event log:    {out_dir / 'events.jsonl'}")
    print((out_dir / "summary.txt").read_text())


if __name__ == "__main__":
    main()
