"""Characterise cells into a Liberty-lite (.lib) timing library.

Runs NLDM-style characterisation (delay and output-transition tables
over an input-slew x output-load grid, AC input capacitances, DC leakage)
for a few cells in the 2-D and 2-channel implementations and prints the
resulting .lib-flavoured library — the artefact a place-and-route flow
would consume from this standard-cell study.

Run:  python examples/liberty_characterization.py   (about two minutes)
"""

from repro.cells.library import get_cell
from repro.cells.liberty import (
    CharacterizationGrid,
    characterize_cell,
    render_liberty,
)
from repro.cells.variants import DeviceVariant, extracted_model_set

CELLS = ("INV1X1", "NAND2X1")
GRID = CharacterizationGrid(slews=(1e-11, 4e-11),
                            loads=(0.5e-15, 1e-15, 2e-15))


def main() -> None:
    characterizations = []
    for variant in (DeviceVariant.TWO_D, DeviceVariant.MIV_2CH):
        models = extracted_model_set(variant)
        for name in CELLS:
            print(f"characterising {name} ({variant.value}) ...")
            characterizations.append(
                characterize_cell(get_cell(name), models, GRID))

    print("\n" + render_liberty(characterizations))

    inv_2d, _, inv_2ch, _ = characterizations
    print("\nDelay at the paper's operating point (10 ps slew, 1 fF):")
    d2d = inv_2d.delay_at("a", 1e-11, 1e-15)
    d2c = inv_2ch.delay_at("a", 1e-11, 1e-15)
    print(f"  INV1X1 2D    {d2d * 1e12:.3f} ps")
    print(f"  INV1X1 2-ch  {d2c * 1e12:.3f} ps  "
          f"({100 * (d2c / d2d - 1):+.1f}%)")


if __name__ == "__main__":
    main()
